"""Deployment planning: will a PoWiFi-powered sensor work *here*?

The adoption-facing API: given a router configuration, an environment
(path-loss exponent, walls, expected cumulative occupancy) and a sensing
requirement (operation energy and target rate), answer the questions a
deployer asks — maximum distance, achievable rate at a spot, required
occupancy, and a placement report for a list of candidate spots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.harvester.harvester import (
    Harvester,
    battery_free_harvester,
    battery_recharging_harvester,
)
from repro.rf.antenna import HARVESTER_ANTENNA, POWIFI_ROUTER_ANTENNA, Antenna
from repro.rf.link import LinkBudget, Transmitter
from repro.rf.materials import WallMaterial
from repro.rf.propagation import INDOOR_LOS_EXPONENT, LogDistancePathLoss
from repro.units import dbm_to_watts, watts_to_dbm


@dataclass(frozen=True)
class Environment:
    """The deployment site's RF characteristics."""

    #: Indoor path-loss exponent (1.7 corridor … 3+ cluttered NLOS).
    path_loss_exponent: float = INDOOR_LOS_EXPONENT
    #: Expected cumulative channel occupancy the router will sustain
    #: (≈1.9 on idle channels, ≈0.8–1.3 in occupied neighbourhoods per §6).
    cumulative_occupancy: float = 1.0
    #: Wall between router and sensor, if any.
    wall: Optional[WallMaterial] = None

    def __post_init__(self) -> None:
        if self.path_loss_exponent <= 0:
            raise ConfigurationError("path-loss exponent must be > 0")
        if self.cumulative_occupancy < 0:
            raise ConfigurationError("occupancy must be >= 0")


@dataclass(frozen=True)
class SensingRequirement:
    """What the deployed device must do."""

    #: Energy per operation (2.77 µJ temperature read, 10.4 mJ image, ...).
    operation_energy_j: float
    #: Required operations per second for the application.
    target_rate_hz: float

    def __post_init__(self) -> None:
        if self.operation_energy_j <= 0:
            raise ConfigurationError("operation energy must be > 0")
        if self.target_rate_hz <= 0:
            raise ConfigurationError("target rate must be > 0")

    @property
    def required_power_w(self) -> float:
        """DC power the requirement translates to."""
        return self.operation_energy_j * self.target_rate_hz


@dataclass(frozen=True)
class PlacementVerdict:
    """Planner output for one candidate spot."""

    distance_feet: float
    received_power_dbm: float
    harvested_power_w: float
    achievable_rate_hz: float
    feasible: bool
    margin_db: float


class DeploymentPlanner:
    """Answers feasibility questions for one router + harvester + site.

    Parameters
    ----------
    environment:
        Site characteristics.
    harvester:
        The harvesting chain (battery-free by default).
    tx_power_dbm, tx_antenna, rx_antenna:
        Router and device RF front ends (paper defaults).
    """

    def __init__(
        self,
        environment: Environment = Environment(),
        harvester: Optional[Harvester] = None,
        tx_power_dbm: float = 30.0,
        tx_antenna: Antenna = POWIFI_ROUTER_ANTENNA,
        rx_antenna: Antenna = HARVESTER_ANTENNA,
    ) -> None:
        self.environment = environment
        self.harvester = harvester or battery_free_harvester()
        self.link = LinkBudget(
            Transmitter(tx_power_dbm=tx_power_dbm, antenna=tx_antenna),
            rx_antenna=rx_antenna,
            path_loss=LogDistancePathLoss(exponent=environment.path_loss_exponent),
            wall=environment.wall,
        )

    # ---------------------------------------------------------------- queries

    def harvested_power_w(self, distance_feet: float) -> float:
        """Average DC power available at ``distance_feet``."""
        rx_dbm = self.link.received_power_dbm_at_feet(distance_feet)
        incident = dbm_to_watts(rx_dbm) * self.environment.cumulative_occupancy
        if incident <= 0:
            return 0.0
        return self.harvester.dc_output_power_w(watts_to_dbm(incident))

    def evaluate(
        self, requirement: SensingRequirement, distance_feet: float
    ) -> PlacementVerdict:
        """Feasibility of one placement for one requirement."""
        if distance_feet <= 0:
            raise ConfigurationError("distance must be > 0 feet")
        rx_dbm = self.link.received_power_dbm_at_feet(distance_feet)
        power = self.harvested_power_w(distance_feet)
        rate = power / requirement.operation_energy_j
        feasible = rate >= requirement.target_rate_hz
        # Power margin in dB between harvested and required DC power.
        if power > 0 and requirement.required_power_w > 0:
            import math

            margin_db = 10.0 * math.log10(power / requirement.required_power_w)
        else:
            margin_db = float("-inf")
        return PlacementVerdict(
            distance_feet=distance_feet,
            received_power_dbm=rx_dbm,
            harvested_power_w=power,
            achievable_rate_hz=rate,
            feasible=feasible,
            margin_db=margin_db,
        )

    def max_distance_feet(
        self,
        requirement: SensingRequirement,
        max_feet: float = 60.0,
        step_feet: float = 0.25,
    ) -> float:
        """Farthest placement meeting the requirement (0 if nowhere does)."""
        best = 0.0
        steps = int(max_feet / step_feet)
        for i in range(1, steps + 1):
            feet = i * step_feet
            if self.evaluate(requirement, feet).feasible:
                best = feet
            else:
                break
        return best

    def required_occupancy(
        self, requirement: SensingRequirement, distance_feet: float,
        ceiling: float = 3.0, resolution: float = 0.01,
    ) -> Optional[float]:
        """Smallest cumulative occupancy meeting the requirement at a spot.

        Returns None when even ``ceiling`` (three saturated channels) is not
        enough — the spot is out of range, full stop.
        """
        rx_dbm = self.link.received_power_dbm_at_feet(distance_feet)
        steps = int(ceiling / resolution)
        for i in range(1, steps + 1):
            occupancy = i * resolution
            incident = dbm_to_watts(rx_dbm) * occupancy
            power = self.harvester.dc_output_power_w(watts_to_dbm(incident))
            if power / requirement.operation_energy_j >= requirement.target_rate_hz:
                return occupancy
        return None

    def survey(
        self, requirement: SensingRequirement, distances_feet: Sequence[float]
    ) -> List[PlacementVerdict]:
        """Evaluate a list of candidate spots (a site-survey table)."""
        if not distances_feet:
            raise ConfigurationError("need at least one candidate distance")
        return [self.evaluate(requirement, feet) for feet in distances_feet]
