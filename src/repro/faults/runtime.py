"""Process-wide armed-fault state.

Task-scoped faults travel on the :class:`~repro.runner.tasks.TaskSpec`
itself; this module holds the few faults that are *process*- rather than
task-scoped (today: ``manifest.interrupt``), armed once per run and
consumed at their fault point. Mirrors :mod:`repro.obs.runtime`: a plain
module-global, reset per invocation, never consulted unless a plan armed
something — the zero-plan fast path is one falsy check.
"""

from __future__ import annotations

from typing import Dict

_armed: Dict[str, int] = {}


def arm(point: str, count: int = 1) -> None:
    """Arm ``point`` to fire ``count`` times in this process."""
    _armed[point] = _armed.get(point, 0) + int(count)


def consume(point: str) -> bool:
    """Fire ``point`` if armed: returns True and decrements, else False."""
    remaining = _armed.get(point, 0)
    if remaining <= 0:
        return False
    if remaining == 1:
        del _armed[point]
    else:
        _armed[point] = remaining - 1
    return True


def armed(point: str) -> int:
    """How many firings remain armed for ``point``."""
    return _armed.get(point, 0)


def reset() -> None:
    """Disarm everything (each run_all invocation starts clean)."""
    _armed.clear()
