"""Worker-side fault firing: where armed directives actually detonate.

:func:`fire_worker_faults` runs at the top of
:func:`~repro.runner.tasks.execute_task`, before the driver is called, and
:func:`sabotage_outcome` just after it returns. Both are no-ops unless the
parent bound :class:`~repro.faults.plan.FaultDirective`\\ s onto the task —
the fault-free hot path costs one empty-tuple check.

Directives are one-shot by construction: the runner strips them from a task
before requeueing it, so a retried attempt always runs clean. That is what
makes the chaos invariant hold — injected infrastructure faults change *how*
a result was obtained (attempts, pool rebuilds, quarantines), never the
result bytes.
"""

from __future__ import annotations

import os
import time
from typing import Any, Sequence

from repro.errors import InjectedFault
from repro.faults.plan import DEFAULT_HANG_S, FaultDirective

#: Exit status an injected worker crash dies with (distinguishable from a
#: genuine interpreter abort in worker logs).
CRASH_EXIT_STATUS = 3


class _Unpicklable:
    """A result wrapper no pickle protocol can serialise."""

    def __init__(self, wrapped: Any) -> None:
        self.wrapped = wrapped
        self.poison = lambda: wrapped  # local lambda: unpicklable by design

    def __reduce__(self):
        raise InjectedFault("worker.unpicklable: injected unpicklable result")


def fire_worker_faults(
    directives: Sequence[FaultDirective], in_process: bool
) -> None:
    """Fire pre-driver directives (raise / crash / hang).

    ``in_process`` degrades ``worker.crash`` to an :class:`InjectedFault`
    raise: at ``--jobs 1`` the "worker" is the orchestrating process itself,
    and killing it would turn a recoverable fault into an unrecoverable one.
    """
    for directive in directives:
        if directive.point == "worker.raise":
            raise InjectedFault("worker.raise: injected task failure")
        if directive.point == "campaign.point.poison":
            # Unlike one-shot worker faults, the campaign manager re-arms
            # this directive on every retry: a poisoned point *stays*
            # poisoned, which is what drives it into quarantine.
            raise InjectedFault("campaign.point.poison: injected poisoned point")
        if directive.point == "worker.crash":
            if in_process:
                raise InjectedFault(
                    "worker.crash: degraded to raise (in-process run)"
                )
            os._exit(CRASH_EXIT_STATUS)
        if directive.point == "worker.hang":
            time.sleep(
                DEFAULT_HANG_S if directive.param is None else directive.param
            )


def sabotage_outcome(
    directives: Sequence[FaultDirective], result: Any, in_process: bool
) -> Any:
    """Apply post-driver directives (unpicklable result).

    In-process runs never pickle results, so the wrapper would silently
    *become* the result; ``in_process`` degrades the fault to a raise there,
    keeping result bytes sacrosanct in both modes.
    """
    for directive in directives:
        if directive.point == "worker.unpicklable":
            if in_process:
                raise InjectedFault(
                    "worker.unpicklable: degraded to raise (in-process run)"
                )
            return _Unpicklable(result)
    return result
