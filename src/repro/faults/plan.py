"""Deterministic fault plans: which faults fire, where, and when.

A :class:`FaultPlan` is the seeded description of every fault one run
injects. It is built from :class:`~repro.sim.rng.RandomStreams` (one named
stream per fault point), so for a given ``(seed, fault specs, task set)``
the *same* tasks are faulted in the *same* way on every machine — injected
chaos is as reproducible as the simulation itself, and a flaky-looking
failure can always be replayed from its seed.

Two families of fault points exist (see :data:`FAULT_POINTS`):

* **infrastructure** faults exercise the orchestration layer — a worker
  process crashing or hanging mid-task, an unpicklable result, a corrupted
  cache entry, an interrupted manifest write. These never change experiment
  *results*: a hardened runner retries them away, which is exactly the
  invariant the chaos CI job pins (result hashes byte-identical to a
  fault-free run at the same seed).
* **world** faults are grounded in the paper's §7 deployments — a power
  injector stalling under router load, a channel outage on 1/6/11, a
  transmit-queue overflow exercising the ``IP_Power`` qdepth path, a
  harvester brownout. These *do* change simulated behaviour; they are
  applied to a testbed through :mod:`repro.faults.world`, not silently
  injected into ``run-all``.

Plans parse from a compact CLI spec (``worker.crash:1,worker.hang:1@20``)
or a JSON file; see ``docs/robustness.md``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.sim.rng import RandomStreams, derive_seed

#: Infrastructure fault points: fired by the runner / its workers.
INFRA_FAULT_POINTS: Dict[str, str] = {
    "worker.raise": "the task raises an injected exception mid-execution",
    "worker.crash": "the worker process exits abruptly mid-task "
    "(in-process runs degrade this to worker.raise)",
    "worker.hang": "the task sleeps param seconds (default 30) before "
    "running, tripping the watchdog when it exceeds --task-timeout",
    "worker.unpicklable": "the task completes but returns a result the "
    "pool cannot pickle back to the parent",
    "cache.corrupt": "the task's on-disk cache entry is truncated before "
    "the probe, exercising the quarantine path (no-op on a cold cache)",
    "manifest.interrupt": "the first run_manifest.json write dies between "
    "temp-file write and atomic rename",
    "campaign.journal.corrupt": "the campaign journal append for the "
    "point's first lease is torn mid-line (a simulated kill -9 mid-write), "
    "exercising the recovery fold and journal quarantine on resume",
    "campaign.lease.expire": "the point's first lease is granted already "
    "expired, so the campaign watchdog reclaims it and retries the point",
    "campaign.point.poison": "every attempt of the point raises — retries "
    "cannot help, exercising the poisoned-point quarantine path",
}

#: Simulated-world fault points: applied to a testbed by repro.faults.world.
WORLD_FAULT_POINTS: Dict[str, str] = {
    "world.injector.stall": "a power injector stops enqueueing for a window "
    "(param: stall duration in sim seconds)",
    "world.channel.outage": "external interference holds one channel busy "
    "for a window (param: outage duration in sim seconds)",
    "world.txqueue.overflow": "a device transmit queue tail-drops every push "
    "for a window, exercising the IP_Power qdepth path",
    "world.harvester.brownout": "a storage capacitor's charge collapses to "
    "zero at the window start",
}

#: Every registered fault point, by name.
FAULT_POINTS: Dict[str, str] = {**INFRA_FAULT_POINTS, **WORLD_FAULT_POINTS}

#: Infrastructure points that detonate inside a worker's execute_task call.
#: Tasks assigned one of these are forced to execute (bypassing the cache):
#: a directive that never fires because its task was a cache hit would make
#: chaos runs silently vacuous.
WORKER_FAULT_POINTS = frozenset(
    {"worker.raise", "worker.crash", "worker.hang", "worker.unpicklable"}
)

#: Default sleep for worker.hang when no param is given (seconds).
DEFAULT_HANG_S = 30.0

#: Default world fault window duration when no param is given (sim seconds).
DEFAULT_WINDOW_S = 0.2


@dataclass(frozen=True)
class FaultSpec:
    """One requested fault: a point, how many firings, where, how hard.

    Attributes
    ----------
    point:
        Registered fault-point name (see :data:`FAULT_POINTS`).
    count:
        How many distinct targets this spec faults (default 1).
    param:
        Point-specific magnitude — hang/stall/outage duration in seconds;
        ignored by points that take none.
    scope:
        ``fnmatch`` pattern over ``experiment:part`` task labels
        (``"fig14:*"``, ``"fig9:all"``); ``"*"`` matches every task.
    """

    point: str
    count: int = 1
    param: Optional[float] = None
    scope: str = "*"

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS:
            raise ConfigurationError(
                f"unknown fault point {self.point!r}; known: {sorted(FAULT_POINTS)}"
            )
        if self.count < 1:
            raise ConfigurationError(
                f"fault count must be >= 1, got {self.count} for {self.point}"
            )


@dataclass(frozen=True)
class FaultDirective:
    """One armed fault bound to a concrete target (picklable, crosses the
    pool boundary on the :class:`~repro.runner.tasks.TaskSpec`)."""

    point: str
    param: Optional[float] = None


class FaultPlan:
    """A seeded, deterministic set of faults for one run.

    Parameters
    ----------
    specs:
        The requested faults.
    seed:
        Master seed; target selection draws from
        ``RandomStreams(derive_seed(seed, "faults"))``, one named stream
        per fault point, so adding a new fault never perturbs which tasks
        an existing one selects.
    """

    def __init__(self, specs: Sequence[FaultSpec], seed: int = 0) -> None:
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.seed = int(seed)
        self._streams = RandomStreams(derive_seed(self.seed, "faults"))

    # ------------------------------------------------------------ selection

    def assign(self, labels: Sequence[str]) -> Dict[str, Tuple[FaultDirective, ...]]:
        """Deterministically bind task-scoped faults to task labels.

        ``labels`` are ``experiment:part`` strings for every task the run
        is about to execute. For each infrastructure spec (except
        ``manifest.interrupt``, which is process- not task-scoped), ``count``
        targets are drawn without replacement from the eligible labels in
        sorted order. Same seed + same label set ⇒ same assignment.
        """
        assignment: Dict[str, List[FaultDirective]] = {}
        for index, spec in enumerate(self.specs):
            if spec.point not in INFRA_FAULT_POINTS:
                continue
            if spec.point == "manifest.interrupt":
                continue
            eligible = sorted(
                label for label in set(labels) if fnmatchcase(label, spec.scope)
            )
            if not eligible:
                continue
            rng = self._streams.stream(f"{spec.point}#{index}")
            chosen = rng.sample(eligible, min(spec.count, len(eligible)))
            for label in chosen:
                assignment.setdefault(label, []).append(
                    FaultDirective(point=spec.point, param=spec.param)
                )
        return {label: tuple(directives) for label, directives in assignment.items()}

    def world_specs(self) -> Tuple[FaultSpec, ...]:
        """The simulated-world faults this plan requests."""
        return tuple(s for s in self.specs if s.point in WORLD_FAULT_POINTS)

    def wants(self, point: str) -> bool:
        """Whether any spec targets ``point``."""
        return any(spec.point == point for spec in self.specs)

    def world_stream(self, label: str):
        """A named RNG stream for world-fault window placement."""
        return self._streams.stream(f"world:{label}")

    # ----------------------------------------------------------- rendering

    def describe(self) -> str:
        """The compact spec-string form (round-trips through parsing)."""
        parts = []
        for spec in self.specs:
            text = f"{spec.point}:{spec.count}"
            if spec.param is not None:
                text += f"@{spec.param:g}"
            if spec.scope != "*":
                text += f"%{spec.scope}"
            parts.append(text)
        return ",".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(seed={self.seed}, specs={self.describe()!r})"


def parse_fault_plan(text: str, seed: int = 0) -> FaultPlan:
    """Build a :class:`FaultPlan` from a CLI spec string or a JSON file.

    Spec-string grammar (comma-separated)::

        point[:count][@param][%scope]

    e.g. ``worker.crash:1,worker.hang:1@20,worker.raise:1%fig14:*``.
    A path ending in ``.json`` loads ``{"seed": ..., "faults": [{"point":
    ..., "count": ..., "param": ..., "scope": ...}, ...]}`` instead; an
    explicit ``seed`` there overrides the argument.
    """
    text = text.strip()
    if text.endswith(".json"):
        return _parse_json_plan(Path(text), seed)
    specs = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        specs.append(_parse_spec_token(token))
    if not specs:
        raise ConfigurationError(f"empty fault plan spec {text!r}")
    return FaultPlan(specs, seed=seed)


def _parse_spec_token(token: str) -> FaultSpec:
    scope = "*"
    if "%" in token:
        token, scope = token.split("%", 1)
    param: Optional[float] = None
    if "@" in token:
        token, param_text = token.split("@", 1)
        try:
            param = float(param_text)
        except ValueError as exc:
            raise ConfigurationError(
                f"bad fault param {param_text!r} in {token!r}"
            ) from exc
    count = 1
    if ":" in token:
        token, count_text = token.split(":", 1)
        try:
            count = int(count_text)
        except ValueError as exc:
            raise ConfigurationError(
                f"bad fault count {count_text!r} in {token!r}"
            ) from exc
    return FaultSpec(point=token, count=count, param=param, scope=scope)


def _parse_json_plan(path: Path, seed: int) -> FaultPlan:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot read fault plan {path}: {exc}") from exc
    if not isinstance(data, dict) or "faults" not in data:
        raise ConfigurationError(
            f"{path}: fault plan JSON needs a top-level 'faults' list"
        )
    specs = []
    for entry in data["faults"]:
        if not isinstance(entry, dict) or "point" not in entry:
            raise ConfigurationError(f"{path}: each fault needs a 'point'")
        specs.append(
            FaultSpec(
                point=entry["point"],
                count=int(entry.get("count", 1)),
                param=(
                    None if entry.get("param") is None else float(entry["param"])
                ),
                scope=str(entry.get("scope", "*")),
            )
        )
    return FaultPlan(specs, seed=int(data.get("seed", seed)))
