"""Deterministic fault injection for the PoWiFi reproduction.

PoWiFi's headline claim is graceful behaviour under adversity; this package
gives the reproduction the means to *manufacture* adversity on demand, and
reproducibly. A :class:`~repro.faults.plan.FaultPlan` is built from a seed
and a list of fault specs; every choice it makes — which task a worker
crash hits, when a channel outage opens — comes from named
:class:`~repro.sim.rng.RandomStreams`, so any chaos run replays exactly.

Layering:

* :mod:`repro.faults.plan` — the plan model, fault-point registry, parsing;
* :mod:`repro.faults.inject` — worker-side infrastructure fault firing
  (used by :mod:`repro.runner.tasks`);
* :mod:`repro.faults.world` — simulated-world faults scheduled onto a
  testbed (channel outages, injector stalls, queue overflows, brownouts);
* :mod:`repro.faults.runtime` — process-scoped armed faults
  (``manifest.interrupt``).

See ``docs/robustness.md`` for the fault-point registry and semantics.
"""

from repro.faults.plan import (
    DEFAULT_HANG_S,
    DEFAULT_WINDOW_S,
    FAULT_POINTS,
    INFRA_FAULT_POINTS,
    WORKER_FAULT_POINTS,
    WORLD_FAULT_POINTS,
    FaultDirective,
    FaultPlan,
    FaultSpec,
    parse_fault_plan,
)
from repro.faults.world import (
    WorldFaultEvent,
    apply_to_testbed,
    schedule_world_faults,
)

__all__ = [
    "DEFAULT_HANG_S",
    "DEFAULT_WINDOW_S",
    "FAULT_POINTS",
    "INFRA_FAULT_POINTS",
    "WORKER_FAULT_POINTS",
    "WORLD_FAULT_POINTS",
    "FaultDirective",
    "FaultPlan",
    "FaultSpec",
    "WorldFaultEvent",
    "apply_to_testbed",
    "parse_fault_plan",
    "schedule_world_faults",
]
