"""Simulated-world faults: the deployment flakiness of §7, on demand.

The paper's six home deployments survived weeks of real-world adversity —
routers rebooting under load, neighbouring networks smothering a channel,
sensors browning out between recharge cycles. This module injects those
conditions into a testbed deterministically: each world fault becomes a
seeded window scheduled on the simulator, landing on a component chosen by
the plan's named RNG streams, so a chaos run replays exactly from its seed.

Unlike infrastructure faults (which a hardened runner retries away without
changing any result bytes), world faults *are part of the simulated world*:
they change occupancy, throughput and harvested energy, which is the point
— they answer "does PoWiFi's coexistence story hold when the environment
misbehaves", the robustness claim at the heart of the paper.

Fault points and their component hooks:

* ``world.channel.outage``   → :meth:`repro.mac80211.medium.Medium.inject_outage`
* ``world.injector.stall``   → :meth:`repro.core.injector.PowerInjector.stall_for`
* ``world.txqueue.overflow`` → :meth:`repro.netstack.txqueue.DeviceQueue.begin_forced_overflow`
* ``world.harvester.brownout`` → :meth:`repro.harvester.storage.Capacitor.brownout`
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.faults.plan import DEFAULT_WINDOW_S, FaultPlan

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.experiments.base import Testbed
    from repro.sim.engine import Simulator


@dataclass(frozen=True)
class WorldFaultEvent:
    """One scheduled world fault: what fires, on which component, when."""

    point: str
    target: str
    start_s: float
    duration_s: float

    def to_record(self) -> Dict[str, Any]:
        """JSON-safe form for manifests and reports."""
        return {
            "point": self.point,
            "target": self.target,
            "start_s": round(self.start_s, 6),
            "duration_s": round(self.duration_s, 6),
        }


def schedule_world_faults(
    plan: FaultPlan,
    sim: "Simulator",
    horizon_s: float,
    mediums: Sequence[Any] = (),
    injectors: Sequence[Any] = (),
    queues: Sequence[Any] = (),
    capacitors: Sequence[Any] = (),
) -> List[WorldFaultEvent]:
    """Schedule every world fault of ``plan`` onto ``sim``.

    For each world :class:`~repro.faults.plan.FaultSpec`, ``count`` windows
    are drawn: the target component comes from the spec's named RNG stream
    (choices over components sorted by stable label, so wiring order never
    matters), the start is uniform over the feasible range, and the duration
    is the spec's ``param`` (default :data:`DEFAULT_WINDOW_S`). Returns the
    scheduled events, sorted by start time, for reporting.
    """
    if horizon_s <= 0:
        raise ConfigurationError(f"horizon must be > 0, got {horizon_s}")
    pools: Dict[str, List[Tuple[str, Any]]] = {
        "world.channel.outage": sorted(
            ((f"channel={m.channel}", m) for m in mediums), key=lambda p: p[0]
        ),
        "world.injector.stall": sorted(
            ((f"injector={i.station.name}", i) for i in injectors),
            key=lambda p: p[0],
        ),
        "world.txqueue.overflow": sorted(
            ((f"queue={q.name}", q) for q in queues), key=lambda p: p[0]
        ),
        "world.harvester.brownout": [
            (f"capacitor={index}", c) for index, c in enumerate(capacitors)
        ],
    }
    events: List[WorldFaultEvent] = []
    for index, spec in enumerate(plan.world_specs()):
        pool = pools[spec.point]
        if not pool:
            continue
        rng = plan.world_stream(f"{spec.point}#{index}")
        duration_s = DEFAULT_WINDOW_S if spec.param is None else spec.param
        for _ in range(spec.count):
            target_label, component = pool[rng.randrange(len(pool))]
            start_s = rng.uniform(0.0, max(horizon_s - duration_s, 0.0))
            _schedule_one(sim, spec.point, component, start_s, duration_s)
            events.append(
                WorldFaultEvent(
                    point=spec.point,
                    target=target_label,
                    start_s=start_s,
                    duration_s=duration_s,
                )
            )
    events.sort(key=lambda e: (e.start_s, e.point, e.target))
    return events


def _schedule_one(
    sim: "Simulator", point: str, component: Any, start_s: float, duration_s: float
) -> None:
    if point == "world.channel.outage":
        sim.schedule(
            start_s, component.inject_outage, duration_s, name="fault_outage"
        )
    elif point == "world.injector.stall":
        sim.schedule(
            start_s, component.stall_for, duration_s, name="fault_stall"
        )
    elif point == "world.txqueue.overflow":
        sim.schedule(
            start_s, component.begin_forced_overflow, name="fault_overflow"
        )
        sim.schedule(
            start_s + duration_s,
            component.end_forced_overflow,
            name="fault_overflow_end",
        )
    elif point == "world.harvester.brownout":
        sim.schedule(start_s, component.brownout, name="fault_brownout")


def apply_to_testbed(
    plan: FaultPlan, testbed: "Testbed", horizon_s: float
) -> List[WorldFaultEvent]:
    """Wire ``plan``'s world faults into a standard §4 testbed.

    Targets every channel medium, every router power injector, and the
    injector-side device queues; harvester brownouts need explicit
    capacitors, so pass those through :func:`schedule_world_faults` directly.
    """
    injectors = list(testbed.router.injectors.values())
    return schedule_world_faults(
        plan,
        testbed.sim,
        horizon_s,
        mediums=list(testbed.media.values()),
        injectors=injectors,
        queues=[injector.station.queue for injector in injectors],
    )
