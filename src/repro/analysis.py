"""Statistics and reporting helpers shared across the library.

The paper's evaluation speaks in CDFs, percentiles and per-window series;
this module centralises that arithmetic (used by the occupancy analyzer,
the latency tracker and the figure benchmarks) plus small text-table and
CSV utilities for the regenerated reports.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple, Union

from repro.errors import ConfigurationError


def empirical_cdf(samples: Sequence[float]) -> List[Tuple[float, float]]:
    """(value, cumulative fraction) points of the empirical CDF.

    >>> empirical_cdf([3.0, 1.0])
    [(1.0, 0.5), (3.0, 1.0)]
    """
    ordered = sorted(samples)
    n = len(ordered)
    return [(value, (i + 1) / n) for i, value in enumerate(ordered)]


def percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile ``q`` in [0, 100].

    >>> percentile([0.0, 1.0], 50)
    0.5
    """
    if not samples:
        raise ConfigurationError("cannot take a percentile of no samples")
    if not (0.0 <= q <= 100.0):
        raise ConfigurationError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    pos = q / 100.0 * (len(ordered) - 1)
    low = int(pos)
    high = min(low + 1, len(ordered) - 1)
    if ordered[low] == ordered[high]:
        return ordered[low]
    frac = pos - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


def mean(samples: Sequence[float]) -> float:
    """Arithmetic mean (errors on empty input, unlike statistics.fmean)."""
    if not samples:
        raise ConfigurationError("cannot take the mean of no samples")
    return sum(samples) / len(samples)


@dataclass(frozen=True)
class SampleSummary:
    """Five-number-ish summary of a sample set."""

    count: int
    mean: float
    p10: float
    median: float
    p90: float
    minimum: float
    maximum: float


def summarize(samples: Sequence[float]) -> SampleSummary:
    """Compute the summary statistics the paper's figures report."""
    if not samples:
        raise ConfigurationError("cannot summarise no samples")
    return SampleSummary(
        count=len(samples),
        mean=mean(samples),
        p10=percentile(samples, 10),
        median=percentile(samples, 50),
        p90=percentile(samples, 90),
        minimum=min(samples),
        maximum=max(samples),
    )


class TextTable:
    """A small aligned-text table builder for experiment reports.

    >>> table = TextTable(["scheme", "Mb/s"])
    >>> table.add_row(["baseline", 17.1])
    >>> print(table.render())
    scheme      Mb/s
    baseline    17.1
    """

    def __init__(self, headers: Sequence[str]) -> None:
        if not headers:
            raise ConfigurationError("table needs at least one column")
        self.headers = [str(h) for h in headers]
        self.rows: List[List[str]] = []

    def add_row(self, values: Sequence[Union[str, float, int]]) -> None:
        """Append a row (floats rendered with one decimal by default)."""
        if len(values) != len(self.headers):
            raise ConfigurationError(
                f"row has {len(values)} cells, table has {len(self.headers)} columns"
            )
        rendered = []
        for value in values:
            if isinstance(value, float):
                rendered.append(f"{value:.1f}")
            else:
                rendered.append(str(value))
        self.rows.append(rendered)

    def render(self, padding: int = 4) -> str:
        """Render with per-column alignment."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        for cells in [self.headers] + self.rows:
            line = (" " * padding).join(
                cell.ljust(widths[i]) for i, cell in enumerate(cells)
            )
            lines.append(line.rstrip())
        return "\n".join(lines)


def series_to_csv(
    columns: Dict[str, Sequence[float]],
    target: Union[str, io.TextIOBase, None] = None,
) -> str:
    """Write aligned series as CSV (e.g. a home's occupancy log).

    Parameters
    ----------
    columns:
        Column name -> samples; all columns must be equally long.
    target:
        File path or text stream; ``None`` returns the CSV as a string.
    """
    if not columns:
        raise ConfigurationError("need at least one column")
    lengths = {len(v) for v in columns.values()}
    if len(lengths) != 1:
        raise ConfigurationError(f"column lengths differ: {sorted(lengths)}")
    names = list(columns)
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(names)
    for row in zip(*(columns[name] for name in names)):
        writer.writerow([f"{value:.6g}" for value in row])
    text = buffer.getvalue()
    if target is None:
        return text
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8", newline="") as handle:
            handle.write(text)
    else:
        target.write(text)
    return text
