"""2.4 GHz channel plan.

PoWiFi transmits power on the three non-overlapping US channels 1, 6 and 11;
together they span the 72 MHz band (2.401–2.473 GHz) the harvester's matching
network must cover (§3.1).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import ConfigurationError

#: Channel number -> centre frequency in MHz (IEEE 2.4 GHz plan).
CHANNEL_FREQUENCIES_MHZ: Dict[int, int] = {
    ch: 2407 + 5 * ch for ch in range(1, 14)
}
CHANNEL_FREQUENCIES_MHZ[14] = 2484

#: The non-overlapping channels PoWiFi injects power on.
POWIFI_CHANNELS: Tuple[int, int, int] = (1, 6, 11)

#: 20 MHz nominal channel width.
CHANNEL_WIDTH_HZ = 20e6

#: Band edges of the 72 MHz the harvester must match (§3.1, Fig. 9).
WIFI_BAND_START_HZ = 2.401e9
WIFI_BAND_STOP_HZ = 2.473e9


def channel_frequency_hz(channel: int) -> float:
    """Centre frequency of 2.4 GHz ``channel`` in Hz.

    >>> channel_frequency_hz(6) / 1e9
    2.437
    """
    try:
        return CHANNEL_FREQUENCIES_MHZ[channel] * 1e6
    except KeyError:
        raise ConfigurationError(f"unknown 2.4 GHz channel {channel!r}") from None


def channels_overlap(a: int, b: int) -> bool:
    """True when channels ``a`` and ``b`` overlap spectrally (< 5 apart)."""
    channel_frequency_hz(a)
    channel_frequency_hz(b)
    if {a, b} & {14}:
        return a == b  # channel 14 is offset; treat as isolated
    return abs(a - b) < 5
