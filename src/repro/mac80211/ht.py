"""802.11n (HT) rates and airtime — validating the paper's §4.1(d) claim.

"While our experiments are with 802.11g, PoWiFi's power packets use the
highest bit rate available for Wi-Fi. Thus, the above fairness property
would hold true even with 802.11n or other Wi-Fi variants."

This module provides the single-stream HT MCS table (20 MHz, long and short
guard interval) and HT airtime math so that claim can be exercised: an
802.11n PoWiFi router sends power packets at MCS 7 (65 / 72.2 Mb/s), whose
frames occupy the channel even more briefly than 54 Mb/s ERP frames.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ConfigurationError
from repro.mac80211.rates import PHY_80211G, PhyParameters

#: HT mixed-mode PLCP preamble: L-STF+L-LTF+L-SIG (20 us) + HT-SIG (8 us)
#: + HT-STF (4 us) + one HT-LTF (4 us) for a single spatial stream.
HT_MIXED_PREAMBLE_S = 36e-6

#: OFDM symbol durations: 4 us long GI, 3.6 us short GI.
HT_SYMBOL_LGI_S = 4e-6
HT_SYMBOL_SGI_S = 3.6e-6


@dataclass(frozen=True)
class HtMcs:
    """One single-stream HT MCS at 20 MHz.

    Attributes
    ----------
    index:
        MCS number (0-7 single stream).
    data_bits_per_symbol:
        N_DBPS for 20 MHz operation.
    """

    index: int
    data_bits_per_symbol: int

    def rate_mbps(self, short_gi: bool = False) -> float:
        """Nominal PHY rate at the chosen guard interval.

        >>> HT_MCS_TABLE[7].rate_mbps()
        65.0
        >>> round(HT_MCS_TABLE[7].rate_mbps(short_gi=True), 1)
        72.2
        """
        symbol = HT_SYMBOL_SGI_S if short_gi else HT_SYMBOL_LGI_S
        return self.data_bits_per_symbol / symbol / 1e6


#: Single-stream (Nss=1) 20 MHz HT MCS set.
HT_MCS_TABLE: Dict[int, HtMcs] = {
    0: HtMcs(0, 26),
    1: HtMcs(1, 52),
    2: HtMcs(2, 78),
    3: HtMcs(3, 104),
    4: HtMcs(4, 156),
    5: HtMcs(5, 208),
    6: HtMcs(6, 234),
    7: HtMcs(7, 260),
}


def ht_frame_airtime_s(
    mac_bytes: int,
    mcs: int,
    short_gi: bool = False,
    phy: PhyParameters = PHY_80211G,
) -> float:
    """On-air duration of an HT (mixed-mode) frame.

    ``T = preamble + Nsym * Tsym (+ 6 us signal extension in 2.4 GHz)``,
    with ``Nsym = ceil((16 + 8*bytes + 6) / N_DBPS)``.

    >>> round(ht_frame_airtime_s(1536, 7) * 1e6, 1)  # MCS7 long GI
    234.0
    """
    if mac_bytes <= 0:
        raise ConfigurationError(f"frame size must be > 0, got {mac_bytes}")
    try:
        entry = HT_MCS_TABLE[mcs]
    except KeyError:
        raise ConfigurationError(
            f"unknown single-stream MCS {mcs}; choose 0-7"
        ) from None
    symbol = HT_SYMBOL_SGI_S if short_gi else HT_SYMBOL_LGI_S
    bits = 16 + 8 * mac_bytes + 6
    symbols = math.ceil(bits / entry.data_bits_per_symbol)
    return HT_MIXED_PREAMBLE_S + symbols * symbol + phy.ofdm_signal_extension


def ht_power_packet_advantage(mac_bytes: int = 1536) -> float:
    """How much briefer an MCS7 power frame is than a 54 Mb/s ERP frame.

    The §4.1(d) argument quantified: > 1 means the 802.11n power packet
    occupies the channel for less time, so PoWiFi-on-11n is *more* polite
    to neighbours than the evaluated 802.11g build.
    """
    from repro.mac80211.airtime import frame_airtime_s

    erp = frame_airtime_s(mac_bytes, 54.0)
    ht = ht_frame_airtime_s(mac_bytes, 7, short_gi=True)
    return erp / ht


def ht_occupancy_metric_per_frame(mac_bytes: int, mcs: int, short_gi: bool = False) -> float:
    """The paper's size/rate credit for one HT frame (seconds)."""
    rate = HT_MCS_TABLE[mcs].rate_mbps(short_gi)
    return 8 * mac_bytes / (rate * 1e6)
