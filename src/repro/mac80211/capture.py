"""Monitor-mode capture: the simulated tcpdump.

§4 measures occupancy by adding an ``airmon-ng`` monitor interface to each
router wireless interface and recording radiotap headers with tcpdump. A
:class:`MonitorCapture` subscribes to a :class:`repro.mac80211.medium.Medium`
and writes every transmission it sees — optionally filtered to one
transmitter, as tshark's "frames sent by the router" filter does — into a
radiotap pcap stream built from real frame bytes.
"""

from __future__ import annotations

import io
from typing import BinaryIO, Callable, List, Optional, Union

from repro.mac80211.channels import CHANNEL_FREQUENCIES_MHZ
from repro.mac80211.frames import FrameJob, FrameKind
from repro.mac80211.medium import Medium, TransmissionRecord
from repro.packets.builder import PowerPacketBuilder
from repro.packets.dot11 import BROADCAST_MAC, Dot11Beacon, Dot11Data, MacAddress
from repro.packets.pcap import LINKTYPE_IEEE802_11_RADIOTAP, PcapWriter
from repro.packets.radiotap import RadiotapHeader


def _default_frame_bytes(frame: FrameJob, station_name: str) -> bytes:
    """Materialise plausible on-air bytes for a frame descriptor.

    Power frames rebuild the real 1500-byte UDP broadcast datagram; beacons
    get a genuine beacon management frame padded to their on-air size;
    everything else becomes a data frame with filler payload of the right
    length — so captured sizes are exact even where contents are synthetic.
    """
    mac = MacAddress(abs(hash(station_name)).to_bytes(8, "big")[-6:])
    if frame.kind is FrameKind.POWER:
        builder = PowerPacketBuilder(
            interface_id=frame.meta.get("interface_id", 0),
            router_mac=mac,
            ip_datagram_bytes=max(64, frame.mac_bytes - 36),
        )
        return builder.build_frame().encode(with_fcs=True)
    if frame.kind is FrameKind.BEACON:
        ssid = frame.meta.get("ssid", "powifi")
        beacon = Dot11Beacon(
            bssid=mac, ssid=ssid, sequence=frame.frame_id & 0xFFF
        )
        encoded = beacon.encode(with_fcs=False)
        # Pad the IE area so the captured size matches the descriptor,
        # then close with the FCS over the padded body.
        padding = max(0, frame.mac_bytes - 4 - len(encoded))
        body = encoded + bytes(padding)
        import struct
        import zlib

        return body + struct.pack("<I", zlib.crc32(body) & 0xFFFFFFFF)
    payload_len = max(0, frame.mac_bytes - 28)  # header(24) + FCS(4)
    data = Dot11Data.broadcast(
        transmitter=mac,
        bssid=mac,
        payload=bytes(payload_len),
        sequence=frame.frame_id & 0xFFF,
    )
    return data.encode(with_fcs=True)


class MonitorCapture:
    """Captures transmissions on one medium into a radiotap pcap.

    Parameters
    ----------
    medium:
        The channel to observe.
    target:
        File path, file-like object, or None for an in-memory buffer.
    station_filter:
        When set, only frames transmitted by this station are recorded —
        the paper's pipeline filters to frames sent by the router.
    """

    def __init__(
        self,
        medium: Medium,
        target: Union[str, BinaryIO, None] = None,
        station_filter: Optional[str] = None,
    ) -> None:
        self.medium = medium
        self.station_filter = station_filter
        self._buffer: Optional[io.BytesIO] = None
        if target is None:
            self._buffer = io.BytesIO()
            target = self._buffer
        self.writer = PcapWriter(target, linktype=LINKTYPE_IEEE802_11_RADIOTAP)
        self.channel_mhz = CHANNEL_FREQUENCIES_MHZ.get(medium.channel, 2412)
        medium.add_observer(self._on_transmission)
        self.captured_frames = 0

    def _on_transmission(self, record: TransmissionRecord) -> None:
        for station_name, frame in record.transmissions:
            if self.station_filter is not None and station_name != self.station_filter:
                continue
            radiotap = RadiotapHeader(
                tsft_us=int(record.start * 1e6),
                rate_mbps=frame.rate_mbps,
                channel_mhz=self.channel_mhz,
            )
            frame_bytes = _default_frame_bytes(frame, station_name)
            self.writer.write(record.start, radiotap.encode() + frame_bytes)
            self.captured_frames += 1

    def close(self) -> None:
        """Stop writing (the observer stays registered but writes fail)."""
        self.writer.close()

    def getvalue(self) -> bytes:
        """The pcap bytes, for in-memory captures."""
        if self._buffer is None:
            raise ValueError("capture was directed at a file, not memory")
        return self._buffer.getvalue()
