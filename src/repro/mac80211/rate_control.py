"""Minstrel-style rate adaptation.

The paper's router runs "the default Wi-Fi rate adaptation algorithm" for
client traffic in the TCP and PLT experiments; on Linux/ath9k that is
Minstrel. This is a compact Minstrel: per-rate EWMA success probability,
expected-throughput rate selection, and a look-around probe fraction.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence

from repro.errors import ConfigurationError
from repro.mac80211.airtime import frame_airtime_s
from repro.mac80211.rates import ALL_80211G_RATES_MBPS, ERP_OFDM_RATES_MBPS
from repro.sim.rng import RandomStreams


class MinstrelLite:
    """EWMA throughput-maximising rate controller.

    Parameters
    ----------
    rates:
        Candidate rate set (defaults to the ERP-OFDM rates).
    ewma_weight:
        Weight of the historical estimate when new samples fold in.
    probe_fraction:
        Fraction of decisions spent sampling a random non-best rate,
        mirroring Minstrel's ~10 % look-around.
    rng:
        Randomness source for probing; inject a :class:`RandomStreams`
        stream (the default is the ``mac.minstrel.probe`` stream at seed 0).
    reference_bytes:
        Frame size used when ranking rates by expected throughput.
    """

    def __init__(
        self,
        rates: Sequence[float] = ERP_OFDM_RATES_MBPS,
        ewma_weight: float = 0.75,
        probe_fraction: float = 0.1,
        rng: Optional[random.Random] = None,
        reference_bytes: int = 1536,
    ) -> None:
        if not rates:
            raise ConfigurationError("rate set must not be empty")
        if not (0.0 <= probe_fraction < 1.0):
            raise ConfigurationError(
                f"probe fraction must be in [0, 1), got {probe_fraction}"
            )
        if not (0.0 <= ewma_weight < 1.0):
            raise ConfigurationError(
                f"EWMA weight must be in [0, 1), got {ewma_weight}"
            )
        for rate in rates:
            if rate not in ALL_80211G_RATES_MBPS:
                raise ConfigurationError(f"{rate} Mb/s is not an 802.11g rate")
        self.rates = tuple(sorted(rates))
        self.ewma_weight = ewma_weight
        self.probe_fraction = probe_fraction
        self.rng = rng or RandomStreams(0).stream("mac.minstrel.probe")
        self.reference_bytes = reference_bytes
        # Optimistic initialisation so every rate gets tried early.
        self.success_prob: Dict[float, float] = {r: 1.0 for r in self.rates}
        self.attempts: Dict[float, int] = {r: 0 for r in self.rates}

    def expected_throughput(self, rate: float) -> float:
        """Success-probability-weighted goodput proxy for ``rate``."""
        airtime = frame_airtime_s(self.reference_bytes, rate)
        return self.success_prob[rate] * self.reference_bytes * 8 / airtime

    @property
    def best_rate(self) -> float:
        """The rate with the highest expected throughput."""
        return max(self.rates, key=self.expected_throughput)

    def select(self) -> float:
        """Pick the rate for the next frame (mostly best, sometimes probe)."""
        if self.rng.random() < self.probe_fraction and len(self.rates) > 1:
            best = self.best_rate
            others = [r for r in self.rates if r != best]
            return self.rng.choice(others)
        return self.best_rate

    def report(self, rate: float, success: bool) -> None:
        """Fold one transmission outcome into the per-rate statistics."""
        if rate not in self.success_prob:
            return  # outcome for a rate outside our managed set
        sample = 1.0 if success else 0.0
        self.attempts[rate] += 1
        self.success_prob[rate] = (
            self.ewma_weight * self.success_prob[rate]
            + (1.0 - self.ewma_weight) * sample
        )
