"""The shared wireless medium: carrier sense and DCF contention resolution.

One :class:`Medium` models one 2.4 GHz channel. Stations attach to it and
contend per the 802.11 DCF: when the medium goes idle, every station with a
pending frame waits DIFS plus its slotted backoff; the station(s) whose
counter expires first transmit. Simultaneous expiries collide. Unicast frames
are acknowledged and retransmitted with binary-exponential backoff; broadcast
frames (PoWiFi power packets) are fire-and-forget.

The medium publishes every transmission to observers — monitor captures,
occupancy meters and harvester couplers subscribe to these records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.errors import MediumError
from repro.mac80211.airtime import ack_airtime_s, frame_airtime_s
from repro.mac80211.frames import FrameJob
from repro.mac80211.rates import PHY_80211G, PhyParameters
from repro.sim.engine import Event, Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.mac80211.station import Station


@dataclass(frozen=True)
class TransmissionRecord:
    """One medium-busy period caused by one or more frames.

    Attributes
    ----------
    start:
        Simulation time the first bit hit the air.
    duration:
        Busy duration including any SIFS+ACK exchange.
    airtime:
        Duration of the (longest) data frame alone.
    channel:
        Channel number this medium models.
    transmissions:
        ``(station_name, frame)`` pairs; more than one entry means collision.
    collided:
        True when two or more stations transmitted simultaneously.
    success:
        For unicast: whether the (single) frame was acknowledged.
    """

    start: float
    duration: float
    airtime: float
    channel: int
    transmissions: Tuple[Tuple[str, FrameJob], ...]
    collided: bool
    success: bool

    @property
    def end(self) -> float:
        """Time the medium went idle again."""
        return self.start + self.duration


MediumObserver = Callable[[TransmissionRecord], None]


class Medium:
    """A single-channel CSMA/CA medium.

    Parameters
    ----------
    sim:
        The simulation kernel.
    channel:
        2.4 GHz channel number (used for labelling and capture headers).
    phy:
        MAC/PHY timing constants.
    """

    def __init__(
        self,
        sim: Simulator,
        channel: int = 1,
        phy: PhyParameters = PHY_80211G,
    ) -> None:
        self.sim = sim
        self.channel = channel
        self.phy = phy
        # phy is fixed for the life of the medium; the DIFS + slot pair is
        # read once per DCF round, so skip the dataclass attribute chain.
        self._difs = phy.difs
        self._slot_time = phy.slot_time
        self.stations: List["Station"] = []
        # frame_airtime_s is pure in (size, rate) for a fixed PHY and the
        # traffic mix reuses a handful of combinations millions of times.
        self._airtime_cache: dict = {}
        self._ack_cache: dict = {}
        self._busy_until = 0.0
        self._round_event: Optional[Event] = None
        self._round_contenders: List["Station"] = []
        self._round_started_at = 0.0
        self._observers: List[MediumObserver] = []
        self.total_busy_time = 0.0
        self.transmission_count = 0
        self.collision_count = 0
        self.outage_count = 0
        metrics = sim.metrics
        self._m_transmissions = metrics.counter(
            "mac.medium.transmissions", channel=channel
        )
        self._m_collisions = metrics.counter("mac.medium.collisions", channel=channel)
        self._m_busy_s = metrics.counter("mac.medium.busy_time_s", channel=channel)
        self._m_airtime_s = metrics.counter("mac.medium.airtime_s", channel=channel)
        self._m_rounds = metrics.counter("mac.medium.dcf_rounds", channel=channel)
        self._m_outages = metrics.counter("mac.medium.outages", channel=channel)

    # ------------------------------------------------------------------ wiring

    def attach(self, station: "Station") -> None:
        """Register a station on this channel."""
        if station in self.stations:
            raise MediumError(f"station {station.name!r} already attached")
        self.stations.append(station)
        station._medium = self

    def add_observer(self, observer: MediumObserver) -> None:
        """Subscribe a callback to every :class:`TransmissionRecord`."""
        self._observers.append(observer)

    @property
    def is_busy(self) -> bool:
        """True while a transmission (plus ACK exchange) is on the air."""
        return self.sim.now < self._busy_until

    def inject_outage(self, duration_s: float) -> None:
        """Hold the channel busy for ``duration_s`` from now (external
        interference — the fault-injection hook behind
        ``world.channel.outage``, see ``docs/robustness.md``).

        Carrier sense reacts exactly as it would to a real interferer: any
        pending DCF round is abandoned (the countdown would have frozen)
        and contention restarts when the outage clears. An in-flight
        transmission keeps its schedule — the interferer corrupts nobody
        retroactively, it only extends the busy horizon.
        """
        if duration_s <= 0:
            raise MediumError(f"outage duration must be > 0, got {duration_s}")
        now = self.sim.now
        end = now + duration_s
        # Only the *incremental* busy extension counts toward occupancy.
        self.total_busy_time += max(0.0, end - max(self._busy_until, now))
        if end > self._busy_until:
            self._busy_until = end
        self.outage_count += 1
        self._m_outages.inc()
        if self._round_event is not None:
            self._round_event.cancel()
            self._round_event = None
            self._round_contenders = []
        self.sim.schedule(duration_s, self.notify_ready, name="outage_end")

    # --------------------------------------------------------------- contention

    def notify_ready(self) -> None:
        """A station's queue became non-empty; start a round if possible.

        Called by stations on enqueue and by the medium itself when a busy
        period ends. If the medium is busy, the round starts automatically
        when it clears; if a round is already pending, the newcomer joins
        the next one (a close approximation of joining mid-countdown).
        """
        if self._round_event is not None or self.sim._now < self._busy_until:
            return
        self._schedule_round()

    def _schedule_round(self) -> None:
        contenders = [s for s in self.stations if s.queue._size]
        if not contenders:
            return
        min_slots = None
        for station in contenders:
            remaining = station.backoff_remaining
            if remaining is None:
                station.ensure_backoff()
                remaining = station.backoff_remaining
            if min_slots is None or remaining < min_slots:
                min_slots = remaining
        wait = self._difs + min_slots * self._slot_time
        self._round_contenders = contenders
        self._round_started_at = self.sim.now
        self._round_event = self.sim.schedule(
            wait, self._resolve_round, min_slots, name="dcf_round"
        )

    def _resolve_round(self, min_slots: int) -> None:
        self._round_event = None
        # Re-validate: queues may have drained (e.g. a flow was cancelled).
        contenders = [s for s in self._round_contenders if s.queue._size]
        self._round_contenders = []
        if not contenders:
            self.notify_ready()
            return
        # A contender whose own transmission completed at the same instant
        # the round was scheduled (event-ordering tie at a busy boundary)
        # arrives here with a reset backoff; it re-draws and contends fresh.
        winners = []
        for station in contenders:
            if station.backoff_remaining is None:
                station.ensure_backoff()
            if station.backoff_remaining <= min_slots:
                winners.append(station)
            else:
                station.backoff_remaining -= min_slots
        if not winners:
            # All original minimum-backoff stations drained; restart.
            self.notify_ready()
            return
        self._transmit(winners)

    def _transmit(self, winners: Sequence["Station"]) -> None:
        collided = len(winners) > 1
        pairs: List[Tuple["Station", FrameJob]] = []
        airtime = 0.0
        airtime_cache = self._airtime_cache
        for station in winners:
            frame = station.begin_transmission()
            pairs.append((station, frame))
            key = (frame.mac_bytes, frame.rate_mbps)
            cached = airtime_cache.get(key)
            if cached is None:
                cached = airtime_cache[key] = frame_airtime_s(
                    frame.mac_bytes, frame.rate_mbps, self.phy
                )
            if cached > airtime:
                airtime = cached
        duration = airtime
        success = not collided
        # Only a clean unicast frame is followed by a SIFS + ACK exchange.
        if not collided:
            station, frame = pairs[0]
            if not frame.broadcast:
                if station.unicast_loss_probability > 0.0:
                    if station.loss_rng.random() < station.unicast_loss_probability:
                        success = False
                if success:
                    ack = self._ack_cache.get(frame.rate_mbps)
                    if ack is None:
                        ack = self._ack_cache[frame.rate_mbps] = ack_airtime_s(
                            frame.rate_mbps, self.phy
                        )
                    duration += self.phy.sifs + ack
        sim = self.sim
        start = sim._now
        self._busy_until = start + duration
        self.total_busy_time += duration
        self.transmission_count += len(pairs)
        self._m_transmissions.inc(len(pairs))
        self._m_busy_s.inc(duration)
        self._m_airtime_s.inc(airtime)
        self._m_rounds.inc()
        if collided:
            self.collision_count += 1
            self._m_collisions.inc()
        trace = sim.trace
        if trace.wants("mac.tx"):
            trace.emit(
                start,
                f"medium:ch{self.channel}",
                "mac.tx",
                stations=[s.name for s, _ in pairs],
                airtime_s=airtime,
                duration_s=duration,
                collided=collided,
                success=success,
            )
        record = TransmissionRecord(
            start=start,
            duration=duration,
            airtime=airtime,
            channel=self.channel,
            transmissions=tuple((s.name, f) for s, f in pairs),
            collided=collided,
            success=success,
        )
        for observer in self._observers:
            observer(record)
        # Detail-gated hot-path span: one per busy period, ended by the
        # tx_done callback (non-LIFO close — overlapping channels interleave).
        spans = sim.spans
        busy_span = None
        if spans.detail:
            busy_span = spans.begin(
                "mac.medium.busy",
                sim_start_s=start,
                channel=self.channel,
                collided=collided,
            )
        sim.schedule(
            duration, self._finish_transmission, pairs, collided, success,
            busy_span, name="tx_done",
        )

    def _finish_transmission(
        self,
        pairs: Sequence[Tuple["Station", FrameJob]],
        collided: bool,
        success: bool,
        busy_span=None,
    ) -> None:
        if busy_span is not None:
            self.sim.spans.end(busy_span, sim_end_s=self.sim.now)
        for station, frame in pairs:
            station.finish_transmission(frame, success=(success and not collided))
        self.notify_ready()

    # ---------------------------------------------------------------- metrics

    def occupancy(self, since: float = 0.0) -> float:
        """Fraction of wall-clock time the medium has been busy since t=0.

        This is the *physical* busy fraction; the paper's occupancy metric
        (Σ size/rate over captured frames) is computed by
        :class:`repro.core.occupancy.OccupancyAnalyzer` from captures and can
        exceed this because it excludes PHY preambles it cannot observe.
        """
        elapsed = self.sim.now - since
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.total_busy_time / elapsed)
