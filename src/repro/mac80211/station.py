"""Stations: anything with a transmit queue attached to a medium.

A station couples a :class:`repro.netstack.txqueue.DeviceQueue` to the DCF.
The PoWiFi router instantiates one station per Atheros chipset (channels 1,
6, 11); clients, neighbouring APs and background traffic sources are further
stations on the same media.
"""

from __future__ import annotations

import random
from typing import Optional, TYPE_CHECKING

from repro.errors import MediumError
from repro.mac80211.frames import FrameJob, FrameKind
from repro.netstack.txqueue import DeviceQueue
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mac80211.medium import Medium


class Station:
    """A DCF transmitter with a bounded device queue.

    Parameters
    ----------
    sim:
        Simulation kernel.
    name:
        Unique label, used in traces, captures and statistics.
    streams:
        Random-stream factory; the station draws backoff slots from the
        stream ``"backoff:<name>"`` and loss decisions from
        ``"loss:<name>"``.
    queue_capacity:
        Device queue bound in frames (Linux default txqueuelen-style).
    unicast_loss_probability:
        Channel-error probability applied per unicast attempt, exercising
        the retransmission path.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        streams: RandomStreams,
        queue_capacity: int = 1000,
        unicast_loss_probability: float = 0.0,
        queue_classifier=None,
    ) -> None:
        self.sim = sim
        self.name = name
        if queue_classifier is None:
            self.queue = DeviceQueue(
                capacity=queue_capacity, metrics=sim.metrics, name=name
            )
        else:
            self.queue = DeviceQueue(
                capacity=queue_capacity,
                classifier=queue_classifier,
                metrics=sim.metrics,
                name=name,
            )
        self.backoff_rng: random.Random = streams.stream(f"backoff:{name}")
        self.loss_rng: random.Random = streams.stream(f"loss:{name}")
        self.unicast_loss_probability = unicast_loss_probability
        self.backoff_remaining: Optional[int] = None
        self._medium: Optional["Medium"] = None
        self._in_flight: Optional[FrameJob] = None
        #: Optional observer fired whenever the in-flight slot flips — the
        #: other half of :attr:`queue_depth` beyond the device queue itself.
        #: Queue-content changes are observable via ``queue.on_change``; a
        #: depth watcher (the injector fast-forward) subscribes to both.
        self.on_depth_change: Optional[callable] = None
        self.frames_sent = 0
        self.frames_dropped = 0
        self.bytes_sent = 0
        metrics = sim.metrics
        self._m_sent = metrics.counter("mac.station.frames_sent", station=name)
        self._m_dropped = metrics.counter("mac.station.frames_dropped", station=name)
        self._m_retries = metrics.counter("mac.station.retries", station=name)
        self._m_backoff = metrics.histogram(
            "mac.station.backoff_slots",
            buckets=(0, 1, 3, 7, 15, 31, 63, 127, 255, 511, 1023),
            station=name,
        )

    # ----------------------------------------------------------------- queue

    def enqueue(self, frame: FrameJob) -> bool:
        """Queue a frame for transmission; returns False if the queue is full.

        A full queue *drops* the frame (tail drop), completing it with
        ``success=False`` — this is the loss signal the TCP model reacts to.
        """
        frame.enqueued_at = self.sim._now
        if not self.queue.push(frame):
            self.frames_dropped += 1
            self._m_dropped.inc()
            trace = self.sim.trace
            if trace.wants("mac.drop"):
                trace.emit(
                    self.sim.now, self.name, "mac.drop",
                    reason="tail_drop", flow=frame.flow,
                )
            frame.complete(False, self.sim.now)
            return False
        if self._medium is not None:
            self._medium.notify_ready()
        return True

    def has_pending(self) -> bool:
        """True when a frame is queued or mid-transmission setup."""
        return self.queue._size > 0

    # ------------------------------------------------------------------- DCF

    def ensure_backoff(self) -> None:
        """Draw a fresh backoff counter if none is carried over."""
        if self.backoff_remaining is None:
            queue = self.queue
            # With no retried frame queued (the common case) the head's
            # attempt count is 0 by construction — skip the round-robin peek.
            if queue._retry_pending and queue._size:
                attempts = queue.peek().attempts
            else:
                attempts = 0
            cw = self._phy().cw_for_attempt(attempts)
            self.backoff_remaining = self.backoff_rng.randint(0, cw)
            self._m_backoff.observe(self.backoff_remaining)

    def begin_transmission(self) -> FrameJob:
        """Called by the medium when this station wins the round.

        The frame is popped from the queue for the duration of the attempt;
        a failed unicast attempt re-inserts it at the head of its class.
        """
        if self._in_flight is not None:
            raise MediumError(f"station {self.name!r} already transmitting")
        frame = self.queue.pop()
        if frame is None:
            raise MediumError(f"station {self.name!r} has nothing to send")
        self._in_flight = frame
        frame.attempts += 1
        if self.on_depth_change is not None:
            self.on_depth_change()
        return frame

    def finish_transmission(self, frame: FrameJob, success: bool) -> None:
        """Called by the medium when the busy period for ``frame`` ends."""
        if self._in_flight is not frame:
            raise MediumError(f"station {self.name!r}: unknown frame completion")
        self._in_flight = None
        if self.on_depth_change is not None:
            self.on_depth_change()
        phy = self._phy()
        if frame.broadcast or success:
            # Broadcast is fire-and-forget: it leaves the MAC regardless of
            # whether it collided; unicast leaves on acknowledgement.
            self.backoff_remaining = None
            self.frames_sent += 1
            self.bytes_sent += frame.mac_bytes
            self._m_sent.inc()
            if frame.on_complete is not None:
                frame.on_complete(frame, success, self.sim._now)
            return
        # Failed unicast: retry with doubled contention window, or drop.
        if frame.attempts > phy.retry_limit:
            self.backoff_remaining = None
            self.frames_dropped += 1
            self._m_dropped.inc()
            trace = self.sim.trace
            if trace.wants("mac.drop"):
                trace.emit(
                    self.sim.now, self.name, "mac.drop",
                    reason="retry_limit", flow=frame.flow,
                )
            frame.complete(False, self.sim.now)
            return
        self._m_retries.inc()
        self.queue.push_front(frame)
        cw = phy.cw_for_attempt(frame.attempts)
        self.backoff_remaining = self.backoff_rng.randint(0, cw)
        self._m_backoff.observe(self.backoff_remaining)

    def _phy(self):
        if self._medium is None:
            raise MediumError(f"station {self.name!r} is not attached to a medium")
        return self._medium.phy

    # --------------------------------------------------------------- metrics

    @property
    def queue_depth(self) -> int:
        """Current device-queue depth — the value IP_Power checks (§3.2).

        Counts the frame currently on the air too: the kernel's queue
        accounting releases a frame only on its tx-completion interrupt,
        which is what makes a threshold of one drain the pipeline between
        completion and the injector's next tick (§3.2(i), Fig 5).
        """
        return len(self.queue) + (1 if self._in_flight is not None else 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Station {self.name!r} qdepth={len(self.queue)}>"
