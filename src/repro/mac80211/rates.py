"""802.11b/g PHY rates and timing constants.

The PoWiFi router is an 802.11g device (§3.2: "1500 byte packets transmitted
at the highest 802.11g bit rate of 54 Mbps"); its neighbours and the
BlindUDP baseline use the 1 Mb/s DSSS rate. The constants here follow IEEE
802.11-2012 clauses 16 (DSSS), 17 (HR/DSSS) and 19 (ERP).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigurationError

#: 802.11 / 802.11b DSSS and HR/DSSS rates.
DSSS_RATES_MBPS: Tuple[float, ...] = (1.0, 2.0, 5.5, 11.0)

#: 802.11g ERP-OFDM rates.
ERP_OFDM_RATES_MBPS: Tuple[float, ...] = (6.0, 9.0, 12.0, 18.0, 24.0, 36.0, 48.0, 54.0)

#: All rates an 802.11g station may choose, ascending.
ALL_80211G_RATES_MBPS: Tuple[float, ...] = tuple(
    sorted(DSSS_RATES_MBPS + ERP_OFDM_RATES_MBPS)
)

#: Single-stream 802.11n (HT, 20 MHz) rates: MCS0-7 long GI, plus MCS7
#: short GI. Used by the §4.1(d) fairness-on-11n validation.
HT_RATES_MBPS: Tuple[float, ...] = (6.5, 13.0, 19.5, 26.0, 39.0, 52.0, 58.5, 65.0, 72.2)

#: Every rate the MAC accepts.
ALL_RATES_MBPS: Tuple[float, ...] = tuple(
    sorted(ALL_80211G_RATES_MBPS + HT_RATES_MBPS)
)

#: The highest 802.11g rate; PoWiFi power packets always use this (§3.2).
HIGHEST_80211G_RATE_MBPS = 54.0

#: The lowest rate; BlindUDP uses this to maximise raw occupancy (§4.1).
LOWEST_80211_RATE_MBPS = 1.0


@dataclass(frozen=True)
class PhyParameters:
    """MAC/PHY timing constants for a band/standard combination.

    All durations are in seconds.
    """

    slot_time: float
    sifs: float
    cw_min: int
    cw_max: int
    #: OFDM preamble + PLCP header duration (clause 19 ERP-OFDM).
    ofdm_preamble: float
    #: OFDM symbol duration.
    ofdm_symbol: float
    #: Signal-extension period ERP requires after OFDM frames in 2.4 GHz.
    ofdm_signal_extension: float
    #: Long DSSS PLCP preamble + header duration.
    dsss_long_preamble: float
    #: Short DSSS PLCP preamble + header duration (for rates > 1 Mb/s).
    dsss_short_preamble: float
    #: Retry limit for unicast frames.
    retry_limit: int = 7

    @property
    def difs(self) -> float:
        """DIFS = SIFS + 2 slots."""
        return self.sifs + 2.0 * self.slot_time

    def cw_for_attempt(self, attempt: int) -> int:
        """Contention-window size after ``attempt`` failed transmissions.

        Binary exponential backoff: ``min((cw_min+1)*2^attempt - 1, cw_max)``.

        >>> PHY_80211G.cw_for_attempt(0)
        15
        >>> PHY_80211G.cw_for_attempt(2)
        63
        """
        if attempt < 0:
            raise ConfigurationError(f"attempt must be >= 0, got {attempt}")
        cw = (self.cw_min + 1) * (2 ** attempt) - 1
        return min(cw, self.cw_max)


#: 802.11g with the short slot time the ERP standard allows in a
#: g-only BSS (the configuration the paper's Atheros AR9580 routers ran).
PHY_80211G = PhyParameters(
    slot_time=9e-6,
    sifs=10e-6,
    cw_min=15,
    cw_max=1023,
    ofdm_preamble=20e-6,
    ofdm_symbol=4e-6,
    ofdm_signal_extension=6e-6,
    dsss_long_preamble=192e-6,
    dsss_short_preamble=96e-6,
)


def is_ofdm_rate(rate_mbps: float) -> bool:
    """True when ``rate_mbps`` is an ERP-OFDM rate."""
    return rate_mbps in ERP_OFDM_RATES_MBPS


def is_dsss_rate(rate_mbps: float) -> bool:
    """True when ``rate_mbps`` is a DSSS / HR-DSSS rate."""
    return rate_mbps in DSSS_RATES_MBPS


def is_ht_rate(rate_mbps: float) -> bool:
    """True when ``rate_mbps`` is a single-stream HT (802.11n) rate."""
    return rate_mbps in HT_RATES_MBPS


def validate_rate(rate_mbps: float) -> float:
    """Return ``rate_mbps`` if it is a legal 802.11g or 802.11n rate."""
    if rate_mbps not in ALL_RATES_MBPS:
        raise ConfigurationError(
            f"{rate_mbps} Mb/s is not a supported 802.11g/n rate; choose "
            f"from {ALL_RATES_MBPS}"
        )
    return rate_mbps


def basic_rate_for(rate_mbps: float) -> float:
    """Control-response (ACK) rate for a data frame sent at ``rate_mbps``.

    Per the standard, the ACK goes out at the highest basic rate not above
    the data rate; with the usual basic-rate set {1, 2, 5.5, 11, 6, 12, 24}.
    """
    validate_rate(rate_mbps)
    if is_ht_rate(rate_mbps):
        return 24.0  # HT control responses ride legacy OFDM basic rates
    if is_ofdm_rate(rate_mbps):
        for candidate in (24.0, 12.0, 6.0):
            if candidate <= rate_mbps:
                return candidate
        return 6.0
    for candidate in (11.0, 5.5, 2.0, 1.0):
        if candidate <= rate_mbps:
            return candidate
    return 1.0
