"""802.11 MAC/PHY substrate.

A discrete-event model of the 802.11b/g DCF: per-channel shared media with
carrier sense, DIFS/SIFS/slotted binary-exponential backoff, standards-correct
airtime math for DSSS and ERP-OFDM rates, beaconing, unicast retransmission,
Minstrel-style rate adaptation, and a monitor-mode capture that writes
radiotap pcap files — everything the PoWiFi router design in
:mod:`repro.core` sits on.
"""

from repro.mac80211.rates import (
    DSSS_RATES_MBPS,
    ERP_OFDM_RATES_MBPS,
    ALL_80211G_RATES_MBPS,
    PhyParameters,
    PHY_80211G,
)
from repro.mac80211.airtime import frame_airtime_s, ack_airtime_s
from repro.mac80211.frames import FrameJob, FrameKind
from repro.mac80211.medium import Medium, TransmissionRecord
from repro.mac80211.station import Station
from repro.mac80211.channels import CHANNEL_FREQUENCIES_MHZ, channel_frequency_hz
from repro.mac80211.rate_control import MinstrelLite
from repro.mac80211.capture import MonitorCapture

__all__ = [
    "DSSS_RATES_MBPS",
    "ERP_OFDM_RATES_MBPS",
    "ALL_80211G_RATES_MBPS",
    "PhyParameters",
    "PHY_80211G",
    "frame_airtime_s",
    "ack_airtime_s",
    "FrameJob",
    "FrameKind",
    "Medium",
    "TransmissionRecord",
    "Station",
    "CHANNEL_FREQUENCIES_MHZ",
    "channel_frequency_hz",
    "MinstrelLite",
    "MonitorCapture",
]
