"""Frame descriptors queued at stations and carried over the medium.

The byte-level codecs in :mod:`repro.packets` produce real frame bytes; the
MAC simulation however schedules *descriptors* (size, rate, kind, owner) and
only materialises bytes when a monitor capture asks for them. This keeps long
runs cheap while preserving a faithful byte path when captures are attached.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, Optional

from repro.errors import ConfigurationError
from repro.mac80211.rates import validate_rate

_frame_ids = itertools.count(1)


def consume_frame_ids(n: int) -> None:
    """Advance the global frame-id sequence by ``n`` without building frames.

    Bulk-settlement paths (the injector's saturated-drop fast-forward) use
    this so frames they *didn't* materialise still consume exactly the ids
    the live path would have — later frame ids (and the capture sequence
    numbers derived from them) stay byte-identical at equal seed.
    """
    for _ in range(n):
        next(_frame_ids)


class FrameKind(Enum):
    """What a frame is, for accounting and the queue-threshold logic."""

    #: Superfluous PoWiFi power traffic (UDP broadcast, IP_Power-marked).
    POWER = "power"
    #: Real client data (iperf payloads, HTTP, TCP segments).
    DATA = "data"
    #: TCP acknowledgement segments travelling over the air.
    TCP_ACK = "tcp_ack"
    #: Beacon management frames.
    BEACON = "beacon"
    #: Background traffic from neighbouring networks.
    BACKGROUND = "background"


@dataclass(slots=True)
class FrameJob:
    """A frame awaiting (or undergoing) transmission.

    Attributes
    ----------
    mac_bytes:
        Full MPDU size on the air: MAC header + payload + FCS.
    rate_mbps:
        PHY rate the frame will be modulated at.
    kind:
        Traffic class, see :class:`FrameKind`.
    broadcast:
        Broadcast frames are never acknowledged nor retransmitted.
    flow:
        Opaque label grouping frames into flows for per-flow statistics.
    on_complete:
        Called as ``on_complete(frame, success, completion_time)`` once the
        frame leaves the MAC — delivered, collided (broadcast), or dropped
        after the retry limit.
    payload:
        Optional application payload object carried through the MAC
        (e.g. a TCP segment descriptor); opaque to the MAC itself.
    """

    mac_bytes: int
    rate_mbps: float
    kind: FrameKind = FrameKind.DATA
    broadcast: bool = False
    flow: str = ""
    on_complete: Optional[Callable[["FrameJob", bool, float], None]] = None
    payload: Any = None
    meta: Dict[str, Any] = field(default_factory=dict)
    frame_id: int = field(default_factory=lambda: next(_frame_ids))
    enqueued_at: float = 0.0
    attempts: int = 0
    #: True for PoWiFi power traffic. Precomputed from ``kind`` (which never
    #: changes after construction): the queue classifier asks once per push
    #: and pop, so this must be an attribute read, not a property call.
    is_power: bool = field(init=False, default=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.mac_bytes <= 0:
            raise ConfigurationError(f"mac_bytes must be > 0, got {self.mac_bytes}")
        validate_rate(self.rate_mbps)
        self.is_power = self.kind is FrameKind.POWER

    def complete(self, success: bool, time: float) -> None:
        """Invoke the completion callback, if any."""
        if self.on_complete is not None:
            self.on_complete(self, success, time)
