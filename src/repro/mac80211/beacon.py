"""Beacon generation.

Every AP interface beacons roughly every 102.4 ms (100 TU). Beacons matter
twice in PoWiFi: they are part of the router's transmissions the harvester
draws power from, and they appear in the occupancy captures.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.mac80211.frames import FrameJob, FrameKind
from repro.mac80211.station import Station
from repro.sim.engine import Event, Simulator

#: On-air size of a typical beacon with basic IEs (bytes).
BEACON_FRAME_BYTES = 120

#: Beacons go out at a basic rate; 802.11g APs commonly use 6 Mb/s.
BEACON_RATE_MBPS = 6.0

#: 100 time units of 1024 us.
BEACON_INTERVAL_S = 0.1024


class BeaconSource:
    """Periodically enqueues beacon frames on a station.

    Parameters
    ----------
    sim, station:
        Kernel and the AP interface that beacons.
    interval_s:
        Beacon period; 102.4 ms by default.
    rate_mbps:
        PHY rate for the beacons.
    """

    def __init__(
        self,
        sim: Simulator,
        station: Station,
        interval_s: float = BEACON_INTERVAL_S,
        rate_mbps: float = BEACON_RATE_MBPS,
    ) -> None:
        if interval_s <= 0:
            raise ConfigurationError(f"beacon interval must be > 0, got {interval_s}")
        self.sim = sim
        self.station = station
        self.interval_s = interval_s
        self.rate_mbps = rate_mbps
        self.beacons_sent = 0
        self._timer: Optional[Event] = None
        self._running = False

    def start(self) -> None:
        """Begin beaconing."""
        if self._running:
            return
        self._running = True
        self._timer = self.sim.schedule_periodic(
            self.interval_s, self._beacon, name="beacon"
        )

    def stop(self) -> None:
        """Stop beaconing."""
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _beacon(self) -> None:
        if not self._running:
            return
        frame = FrameJob(
            mac_bytes=BEACON_FRAME_BYTES,
            rate_mbps=self.rate_mbps,
            kind=FrameKind.BEACON,
            broadcast=True,
            flow="beacon",
            on_complete=self._sent,
        )
        self.station.enqueue(frame)  # the periodic timer re-arms the cadence

    def _sent(self, frame: FrameJob, success: bool, time: float) -> None:
        self.beacons_sent += 1
