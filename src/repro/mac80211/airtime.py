"""Standards-correct frame airtime computation.

Airtime is the quantity everything in PoWiFi turns on: the occupancy metric
is Σ size/rate (§4), fairness comes from 54 Mb/s frames occupying the channel
briefly (§3.2(iii)), and harvested energy is proportional to busy airtime.

For ERP-OFDM (802.11g):
    T = preamble + symbols * ceil((16 + 8·bytes + 6) / (4·rate)) + signal_ext
For DSSS/HR-DSSS (802.11b):
    T = PLCP preamble+header + 8·bytes / rate
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.mac80211.rates import (
    PHY_80211G,
    PhyParameters,
    basic_rate_for,
    is_dsss_rate,
    is_ht_rate,
    is_ofdm_rate,
    validate_rate,
)

#: HT rate (Mb/s) -> (MCS index, short guard interval).
_HT_RATE_TO_MCS = {
    6.5: (0, False),
    13.0: (1, False),
    19.5: (2, False),
    26.0: (3, False),
    39.0: (4, False),
    52.0: (5, False),
    58.5: (6, False),
    65.0: (7, False),
    72.2: (7, True),
}

#: MAC-layer size of an 802.11 ACK control frame (bytes).
ACK_FRAME_BYTES = 14


def frame_airtime_s(
    mac_bytes: int,
    rate_mbps: float,
    phy: PhyParameters = PHY_80211G,
) -> float:
    """On-air duration in seconds of a MAC frame of ``mac_bytes`` bytes.

    ``mac_bytes`` counts the entire MPDU: MAC header, payload and FCS.

    >>> round(frame_airtime_s(1536, 54.0) * 1e6, 1)  # PoWiFi power frame
    254.0
    >>> round(frame_airtime_s(1536, 1.0) * 1e6, 1)   # BlindUDP frame
    12480.0
    """
    if mac_bytes <= 0:
        raise ConfigurationError(f"frame size must be > 0 bytes, got {mac_bytes}")
    validate_rate(rate_mbps)
    if is_ht_rate(rate_mbps):
        from repro.mac80211.ht import ht_frame_airtime_s

        mcs, short_gi = _HT_RATE_TO_MCS[rate_mbps]
        return ht_frame_airtime_s(mac_bytes, mcs, short_gi=short_gi, phy=phy)
    if is_ofdm_rate(rate_mbps):
        data_bits_per_symbol = rate_mbps * phy.ofdm_symbol * 1e6  # = 4 * rate
        service_and_tail_bits = 16 + 6
        symbols = math.ceil(
            (service_and_tail_bits + 8 * mac_bytes) / data_bits_per_symbol
        )
        return phy.ofdm_preamble + symbols * phy.ofdm_symbol + phy.ofdm_signal_extension
    if is_dsss_rate(rate_mbps):
        preamble = (
            phy.dsss_long_preamble if rate_mbps == 1.0 else phy.dsss_short_preamble
        )
        return preamble + (8 * mac_bytes) / (rate_mbps * 1e6)
    raise ConfigurationError(f"unclassifiable rate {rate_mbps} Mb/s")


def ack_airtime_s(data_rate_mbps: float, phy: PhyParameters = PHY_80211G) -> float:
    """Duration of the ACK answering a unicast frame sent at ``data_rate_mbps``."""
    return frame_airtime_s(ACK_FRAME_BYTES, basic_rate_for(data_rate_mbps), phy)


def effective_throughput_mbps(
    payload_bytes: int,
    mac_overhead_bytes: int,
    rate_mbps: float,
    phy: PhyParameters = PHY_80211G,
    with_ack: bool = True,
    mean_backoff_slots: float = None,
) -> float:
    """Upper-bound MAC throughput for back-to-back unicast frames.

    Accounts for DIFS, mean initial backoff, the data frame, SIFS and the
    ACK. Used as the saturation reference in the iperf experiments.
    """
    if mean_backoff_slots is None:
        mean_backoff_slots = phy.cw_min / 2.0
    mac_bytes = payload_bytes + mac_overhead_bytes
    cycle = (
        phy.difs
        + mean_backoff_slots * phy.slot_time
        + frame_airtime_s(mac_bytes, rate_mbps, phy)
    )
    if with_ack:
        cycle += phy.sifs + ack_airtime_s(rate_mbps, phy)
    return (8 * payload_bytes) / cycle / 1e6
