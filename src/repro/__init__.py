"""PoWiFi reproduction: power over Wi-Fi with existing chipsets.

A full-system, simulation-backed reproduction of *"Powering the Next Billion
Devices with Wi-Fi"* (Talla et al., CoNEXT 2015): the multi-channel
power-packet injection router, the co-designed RF harvester, the battery-free
temperature and camera sensors, and every evaluation experiment in the paper.

Quickstart
----------
>>> from repro import quickstart_powifi
>>> result = quickstart_powifi(duration_s=2.0, seed=1)
>>> result.cumulative_occupancy > 0.5
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core import (
    InjectorConfig,
    OccupancyAnalyzer,
    PoWiFiRouter,
    PowerInjector,
    RouterConfig,
    Scheme,
)
from repro.mac80211 import Medium
from repro.planner import DeploymentPlanner, Environment, SensingRequirement
from repro.sim import Simulator
from repro.sim.rng import RandomStreams

__version__ = "1.0.0"

__all__ = [
    "InjectorConfig",
    "OccupancyAnalyzer",
    "PoWiFiRouter",
    "PowerInjector",
    "RouterConfig",
    "Scheme",
    "Medium",
    "DeploymentPlanner",
    "Environment",
    "SensingRequirement",
    "Simulator",
    "RandomStreams",
    "QuickstartResult",
    "quickstart_powifi",
]


@dataclass
class QuickstartResult:
    """Summary of a short PoWiFi run."""

    occupancy_by_channel: Dict[int, float]
    cumulative_occupancy: float
    power_frames_sent: int


def quickstart_powifi(duration_s: float = 2.0, seed: int = 0) -> QuickstartResult:
    """Run a PoWiFi router on an otherwise idle set of channels.

    A minimal end-to-end exercise of the core design: three media, three
    injectors, the queue-threshold gate, and the occupancy metric.
    """
    sim = Simulator()
    streams = RandomStreams(seed)
    media = {ch: Medium(sim, channel=ch) for ch in (1, 6, 11)}
    router = PoWiFiRouter(sim, media, streams, RouterConfig(scheme=Scheme.POWIFI))
    router.start()
    sim.run(until=duration_s)
    return QuickstartResult(
        occupancy_by_channel=router.occupancy_by_channel(),
        cumulative_occupancy=router.cumulative_occupancy(),
        power_frames_sent=sum(i.sent for i in router.injectors.values()),
    )
