"""Row-oriented query surface over finished campaigns.

A campaign manifest nests per-point ``domain`` metric streams and ``slo``
objective rows; analysis wants flat tables. :func:`point_rows` flattens
each point into one row: identity columns (campaign, experiment, part,
seed), the swept axes as ``axis.<name>`` columns, the result hash, scalar
domain metrics verbatim and series-valued ones summarised
(``<stream>.mean`` / ``.min`` / ``.max`` / ``.n``), plus SLO verdict
counts. ``repro campaign results`` renders the rows as an aligned table,
CSV, or JSON; the same rows are importable for notebook use.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.errors import ConfigurationError


def load_campaign_manifest(path: Union[str, Path]) -> Dict[str, Any]:
    """Read one campaign manifest, validating just enough to flatten it."""
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ConfigurationError(
            f"cannot read campaign manifest {path}: {exc}"
        ) from exc
    if not isinstance(data, dict) or not isinstance(data.get("points"), list):
        raise ConfigurationError(
            f"{path}: not a campaign manifest (no 'points' list)"
        )
    return data


def _flatten_domain(domain: Any) -> Dict[str, Any]:
    """Scalar domain metrics verbatim; list-like streams summarised."""
    flat: Dict[str, Any] = {}
    if not isinstance(domain, dict):
        return flat
    for name in sorted(domain):
        value = domain[name]
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            flat[name] = value
        elif isinstance(value, dict):
            # Series shape from repro.obs.slo._series: {"window_s", "samples"}.
            samples = value.get("samples")
            if isinstance(samples, list) and samples and all(
                isinstance(s, (int, float)) for s in samples
            ):
                flat[f"{name}.n"] = len(samples)
                flat[f"{name}.mean"] = round(sum(samples) / len(samples), 6)
                flat[f"{name}.min"] = round(min(samples), 6)
                flat[f"{name}.max"] = round(max(samples), 6)
        elif isinstance(value, list) and value and all(
            isinstance(s, (int, float)) and not isinstance(s, bool)
            for s in value
        ):
            flat[f"{name}.n"] = len(value)
            flat[f"{name}.mean"] = round(sum(value) / len(value), 6)
            flat[f"{name}.min"] = round(min(value), 6)
            flat[f"{name}.max"] = round(max(value), 6)
    return flat


def point_rows(
    manifest: Dict[str, Any],
    experiment: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """One flat dict per campaign point, in manifest (= expansion) order."""
    rows: List[Dict[str, Any]] = []
    for entry in manifest.get("points", []):
        if not isinstance(entry, dict):
            continue
        if experiment is not None and entry.get("experiment") != experiment:
            continue
        row: Dict[str, Any] = {
            "campaign": manifest.get("campaign"),
            "point": entry.get("point"),
            "experiment": entry.get("experiment"),
            "part": entry.get("part"),
            "seed": entry.get("seed"),
            "status": entry.get("status"),
            "result_sha256": (entry.get("result_sha256") or "")[:12],
        }
        if entry.get("error"):
            row["error"] = entry["error"]
        axes = entry.get("axes")
        if isinstance(axes, dict):
            for name in sorted(axes):
                row[f"axis.{name}"] = axes[name]
        row.update(_flatten_domain(entry.get("domain")))
        slo = entry.get("slo")
        if isinstance(slo, list) and slo:
            row["slo.ok"] = sum(
                1 for r in slo if isinstance(r, dict) and r.get("status") == "ok"
            )
            row["slo.violated"] = sum(
                1
                for r in slo
                if isinstance(r, dict) and r.get("status") == "violated"
            )
        rows.append(row)
    return rows


def _columns(rows: Sequence[Dict[str, Any]]) -> List[str]:
    """Stable column order: identity first, then everything else as seen."""
    leading = [
        "campaign",
        "point",
        "experiment",
        "part",
        "seed",
        "status",
        "result_sha256",
    ]
    seen: List[str] = [name for name in leading]
    for row in rows:
        for name in row:
            if name not in seen:
                seen.append(name)
    return seen


def _cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value).lower()
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def render_rows(rows: Sequence[Dict[str, Any]]) -> str:
    """Aligned text table of the flattened rows (header + one line each)."""
    if not rows:
        return "(no points)"
    columns = _columns(rows)
    cells = [[_cell(row.get(name)) for name in columns] for row in rows]
    widths = [
        max(len(columns[i]), *(len(line[i]) for line in cells))
        for i in range(len(columns))
    ]
    lines = [
        "  ".join(name.ljust(width) for name, width in zip(columns, widths))
    ]
    for line in cells:
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(line, widths))
        )
    return "\n".join(lines)


def rows_to_csv(rows: Sequence[Dict[str, Any]]) -> str:
    """The flattened rows as CSV text (header row + one line per point)."""
    columns = _columns(rows)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns, extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow({name: row.get(name, "") for name in columns})
    return buffer.getvalue()
