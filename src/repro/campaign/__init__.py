"""Crash-safe campaign manager: journaled parameter sweeps over the registry.

A *campaign* is a declarative JSON grid — registry experiments x sweep axes
x seed replicates — expanded deterministically into content-addressed
points (:mod:`repro.campaign.spec`), executed through the hardened runner
machinery with lease-based dispatch, heartbeats, seeded retry backoff and
poisoned-point quarantine (:mod:`repro.campaign.manager`), with every state
transition appended to a crash-tolerant journal whose recovery fold
survives ``kill -9`` mid-write (:mod:`repro.campaign.journal`). The
flattened query surface over finished campaigns lives in
:mod:`repro.campaign.results`; the CLI verbs are ``repro campaign
run|status|results``. See ``docs/campaigns.md``.
"""

from repro.campaign.journal import (
    JOURNAL_FILENAME,
    JOURNAL_SCHEMA_VERSION,
    CampaignJournal,
    JournalState,
    fold_journal,
    quarantine_journal,
)
from repro.campaign.manager import CampaignResult, PointOutcome, run_campaign
from repro.campaign.results import point_rows, render_rows, rows_to_csv
from repro.campaign.spec import (
    CAMPAIGN_SCHEMA_VERSION,
    DEFAULT_SPEC_DIR,
    CampaignPoint,
    CampaignSpec,
    SweepEntry,
    load_campaign_spec,
    parse_campaign_spec,
    validate_campaign_data,
)

__all__ = [
    "CAMPAIGN_SCHEMA_VERSION",
    "DEFAULT_SPEC_DIR",
    "JOURNAL_FILENAME",
    "JOURNAL_SCHEMA_VERSION",
    "CampaignJournal",
    "CampaignPoint",
    "CampaignResult",
    "CampaignSpec",
    "JournalState",
    "PointOutcome",
    "SweepEntry",
    "fold_journal",
    "load_campaign_spec",
    "parse_campaign_spec",
    "point_rows",
    "quarantine_journal",
    "render_rows",
    "rows_to_csv",
    "run_campaign",
    "validate_campaign_data",
]
