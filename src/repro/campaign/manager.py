"""The campaign manager: run a journaled grid to completion, survivably.

:func:`run_campaign` is ``run_all``'s hardening promoted to campaign scope:

1. **Expand** the spec into content-addressed points and **fold** the
   journal — points already done (or quarantined) in a previous generation
   are honoured, not re-dispatched.
2. **Probe** the result cache: any point whose key is stored replays
   without execution (``run_missing`` semantics — after a ``kill -9`` the
   only re-executed work is what never finished an append).
3. **Dispatch** the rest through a worker pool under *leases*: every
   attempt journals ``point.lease`` before it runs, the manager journals
   ``point.heartbeat`` for in-flight leases on a fixed cadence, and a
   watchdog reclaims leases that outlive ``task_timeout_s`` (or that the
   ``campaign.lease.expire`` fault expired at grant time).
4. **Retry** failures with deterministic :mod:`repro.runner.backoff`
   delays; a point that exhausts its attempts is **quarantined** — the
   campaign completes and reports it instead of wedging.
5. **Write the manifest**: a pure function of (spec, seeds, results) —
   no wall clocks, attempt counts or cache-hit flags — so an interrupted
   + resumed campaign's manifest is byte-identical to an uninterrupted
   equal-seed run's. Execution telemetry lives in the journal and the
   metrics registry, where it belongs.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Tuple, Union

from repro.campaign.journal import (
    JOURNAL_FILENAME,
    CampaignJournal,
    JournalState,
    load_journal,
    quarantine_journal,
)
from repro.campaign.spec import CampaignPoint, CampaignSpec
from repro.faults.plan import FaultDirective, FaultPlan, WORKER_FAULT_POINTS
from repro.obs import runtime as obs_runtime
from repro.obs import slo as slo_mod
from repro.runner.backoff import backoff_s
from repro.runner.cache import DEFAULT_CACHE_DIR, ResultCache, code_fingerprint
from repro.runner.core import ProgressFn, _InterruptGuard, _POLL_INTERVAL_S
from repro.runner.tasks import SpanContext, TaskOutcome, TaskSpec, execute_task

#: Bump on any breaking change to the campaign manifest layout.
MANIFEST_SCHEMA_VERSION = 1

#: Default campaign manifest filename.
MANIFEST_FILENAME = "campaign_manifest.json"

#: Default seconds between heartbeat appends for in-flight leases.
DEFAULT_HEARTBEAT_S = 2.0


@dataclass
class PointOutcome:
    """What one campaign point came to, and how."""

    point: CampaignPoint
    #: ``ok`` or ``quarantined``.
    status: str = "ok"
    #: Served from the result cache without executing this generation.
    cached: bool = False
    #: Finished (done/quarantined) by a *previous* generation's journal.
    replayed: bool = False
    result_sha256: str = ""
    wall_s: float = 0.0
    attempts: int = 0
    error: Optional[str] = None
    domain: Dict[str, Any] = field(default_factory=dict)
    slo_rows: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class CampaignResult:
    """Everything one ``campaign run`` invocation produced."""

    spec: CampaignSpec
    seed: int
    code_fingerprint: str
    outcomes: List[PointOutcome]
    journal_path: str
    manifest: Dict[str, Any] = field(default_factory=dict)
    wall_s: float = 0.0
    interrupted: bool = False
    generations: int = 1
    #: Journal records the recovery fold dropped (duplicates/stale).
    journal_dropped: int = 0
    #: Where a corrupt prior journal was moved, if recovery quarantined one.
    journal_quarantined: Optional[str] = None
    fault_events: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def executed(self) -> int:
        return sum(
            1 for o in self.outcomes if not o.cached and not o.replayed
        )

    @property
    def quarantined(self) -> List[PointOutcome]:
        return [o for o in self.outcomes if o.status == "quarantined"]

    @property
    def ok(self) -> bool:
        """Campaign completed (quarantined points degrade, not fail)."""
        return not self.interrupted


@dataclass
class _PointState:
    """Mutable dispatch bookkeeping for one point."""

    point: CampaignPoint
    #: Directives that ride into the worker (worker.* one-shot + poison).
    worker_faults: Tuple[FaultDirective, ...] = ()
    #: Poison re-arms on every retry instead of stripping.
    poisoned: bool = False
    #: One-shot: the first granted lease is born expired.
    expire_lease: bool = False
    #: One-shot: tear the journal append of the first lease.
    corrupt_journal: bool = False
    attempts: int = 0
    ready_at: float = 0.0
    lease: Optional[str] = None
    failure: Optional[str] = None


def _point_faults(
    state: _PointState,
) -> Tuple[FaultDirective, ...]:
    """The directives this attempt carries into ``execute_task``."""
    faults = state.worker_faults
    if state.poisoned:
        faults = faults + (FaultDirective(point="campaign.point.poison"),)
    return faults


def build_manifest(
    spec: CampaignSpec,
    fingerprint: str,
    outcomes: List[PointOutcome],
) -> Dict[str, Any]:
    """The campaign manifest: a pure function of spec + results.

    Deliberately free of wall clocks, timestamps, attempt counts and
    cache-hit flags — anything that differs between an uninterrupted run
    and a killed-and-resumed one. That is the byte-identity invariant the
    chaos-campaign CI job pins.
    """
    points = []
    for outcome in outcomes:
        point = outcome.point
        points.append(
            {
                "point": point.point_id,
                "experiment": point.experiment,
                "part": point.part,
                "axes": point.axes,
                "seed": point.seed,
                "key": point.key,
                "status": outcome.status,
                "result_sha256": outcome.result_sha256,
                "error": outcome.error,
                "domain": outcome.domain,
                "slo": outcome.slo_rows,
            }
        )
    return {
        "schema": MANIFEST_SCHEMA_VERSION,
        "campaign": spec.name,
        "spec_digest": spec.digest(),
        "code_fingerprint": fingerprint,
        "seeds": list(spec.seeds),
        "points": points,
        "totals": {
            "points": len(points),
            "ok": sum(1 for p in points if p["status"] == "ok"),
            "quarantined": sum(
                1 for p in points if p["status"] == "quarantined"
            ),
        },
    }


def write_manifest(path: Union[str, Path], manifest: Dict[str, Any]) -> Path:
    """Atomically write the campaign manifest (sorted keys, stable bytes)."""
    from repro.obs.ioutil import write_atomic

    payload = json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    return write_atomic(path, payload)


def run_campaign(
    spec: CampaignSpec,
    jobs: Optional[int] = None,
    seed: int = 0,
    use_cache: bool = True,
    cache_dir: str = DEFAULT_CACHE_DIR,
    retries: int = 1,
    task_timeout_s: Optional[float] = None,
    heartbeat_s: float = DEFAULT_HEARTBEAT_S,
    fault_plan: Optional[FaultPlan] = None,
    live_sink: Optional[Any] = None,
    journal_path: Optional[Union[str, Path]] = None,
    resume: bool = True,
    progress: Optional[ProgressFn] = None,
) -> CampaignResult:
    """Run (or resume) one campaign to completion.

    ``resume=True`` (the default, and what ``--resume`` spells) folds an
    existing journal first: points it proves done or quarantined are
    honoured, everything else re-dispatches, and cache hits make the
    re-dispatch free. ``resume=False`` moves any existing journal aside
    (quarantine convention) and starts generation 1 fresh — the cache is
    still consulted unless ``use_cache=False``.

    The campaign *completes* even when points fail every attempt: those
    are quarantined and reported, never fatal. Only an operator signal
    (SIGINT/SIGTERM — and trivially SIGKILL) leaves the campaign
    unfinished, and a later ``--resume`` picks up where the journal stops.
    """
    started = time.perf_counter()
    emit = progress or (lambda line: None)
    registry = obs_runtime.get_registry()
    spans = obs_runtime.get_spans()
    retries = max(0, int(retries))
    max_attempts = retries + 1

    fingerprint = code_fingerprint()
    points = spec.expand(fingerprint)
    journal_path = Path(journal_path) if journal_path else Path(JOURNAL_FILENAME)

    prior = JournalState(path=str(journal_path))
    journal_quarantined: Optional[str] = None
    if resume:
        prior = load_journal(journal_path)
        journal_quarantined = prior.quarantined_path
        if journal_quarantined:
            emit(
                f"[journal] corrupt journal quarantined to "
                f"{journal_quarantined}; recovering from cache"
            )
        elif prior.records:
            emit(
                f"[journal] resuming generation {prior.generations + 1}: "
                f"{len(prior.done)} done, {len(prior.quarantined)} "
                f"quarantined, {prior.dropped} dropped record(s)"
                + (", torn tail tolerated" if prior.torn_tail else "")
            )
    elif journal_path.exists():
        moved = quarantine_journal(journal_path)
        if moved is not None:
            emit(f"[journal] previous journal moved to {moved} (--fresh)")

    campaign_span = spans.begin(
        "campaign.run", campaign=spec.name, points=len(points), seed=seed
    )
    journal = CampaignJournal(journal_path, start_seq=prior.last_seq)
    cache = ResultCache(cache_dir) if use_cache else None

    # Bind fault directives to point labels (seed-qualified, so a count=1
    # spec poisons exactly one replicate). Campaign-infra points configure
    # the manager; worker points ride into execute_task as usual.
    fault_events: List[Dict[str, Any]] = []
    assignment: Dict[str, Tuple[FaultDirective, ...]] = {}
    if fault_plan is not None:
        assignment = fault_plan.assign([p.label for p in points])
        for label in sorted(assignment):
            for directive in assignment[label]:
                fault_events.append(
                    {
                        "point": directive.point,
                        "task": label,
                        "param": directive.param,
                    }
                )

    journal.append(
        "campaign.open",
        campaign=spec.name,
        spec_digest=spec.digest(),
        code_fingerprint=fingerprint,
        points=len(points),
        seed=seed,
        generation=prior.generations + 1,
        resume=bool(prior.records),
    )

    # Default SLO specs, evaluated per point at merge time (pure).
    slo_specs_by_experiment: Dict[str, List[Any]] = {}
    try:
        experiment_ids = sorted({p.experiment for p in points})
        for slo_spec in slo_mod.load_default_specs(experiment_ids):
            slo_specs_by_experiment.setdefault(
                slo_spec.experiment, []
            ).append(slo_spec)
    except Exception as exc:
        emit(f"[slo] skipping default specs: {exc}")

    outcomes: Dict[str, PointOutcome] = {}  # key -> outcome
    pending: List[_PointState] = []

    def _finish(
        state_or_point: Any,
        result: Any,
        *,
        cached: bool,
        replayed: bool,
        wall_s: float,
        attempts: int,
    ) -> PointOutcome:
        point = (
            state_or_point.point
            if isinstance(state_or_point, _PointState)
            else state_or_point
        )
        sha = hashlib.sha256(
            pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        ).hexdigest()
        domain = slo_mod.domain_metrics(point.experiment, result)
        slo_rows = slo_mod.evaluate_specs(
            slo_specs_by_experiment.get(point.experiment, []),
            {point.experiment: domain},
        )
        outcome = PointOutcome(
            point=point,
            status="ok",
            cached=cached,
            replayed=replayed,
            result_sha256=sha,
            wall_s=wall_s,
            attempts=attempts,
            domain=domain,
            slo_rows=slo_rows,
        )
        outcomes[point.key] = outcome
        return outcome

    def _quarantine_point(point: CampaignPoint, attempts: int, error: str,
                          replayed: bool = False) -> PointOutcome:
        outcome = PointOutcome(
            point=point,
            status="quarantined",
            replayed=replayed,
            attempts=attempts,
            error=error,
        )
        outcomes[point.key] = outcome
        if not replayed:
            journal.append(
                "point.quarantined",
                point=point.point_id,
                key=point.key,
                attempts=attempts,
                error=error,
            )
            registry.counter("campaign.points.quarantined").inc()
            emit(
                f"[quarantine] {point.label} after {attempts} attempt(s): "
                f"{error}"
            )
        if live_sink is not None:
            live_sink.part_state(
                point.experiment,
                point.part_label,
                "quarantined",
                error=error,
            )
        return outcome

    # ---------------------------------------------------------------- probe
    for point in points:
        directives = assignment.get(point.label, ())
        worker_faults = tuple(
            d for d in directives if d.point in WORKER_FAULT_POINTS
        )
        poisoned = any(d.point == "campaign.point.poison" for d in directives)
        if cache is not None and any(
            d.point == "cache.corrupt" for d in directives
        ):
            fired = cache.corrupt_entry(point.key)
            fault_events.append(
                {"point": "cache.corrupt", "task": point.label, "fired": fired}
            )
        if point.key in prior.quarantined:
            record = prior.quarantined[point.key]
            _quarantine_point(
                point,
                attempts=int(record.get("attempts", 0) or 0),
                error=str(record.get("error", "quarantined")),
                replayed=True,
            )
            continue
        expire_lease = any(
            d.point == "campaign.lease.expire" for d in directives
        )
        corrupt_journal = any(
            d.point == "campaign.journal.corrupt" for d in directives
        )
        # Any injected fault bypasses the cache: lease-scoped faults only
        # fire on a granted lease, and a hit would grant none.
        must_execute = (
            bool(worker_faults) or poisoned or expire_lease or corrupt_journal
        )
        if cache is not None and not must_execute:
            hit, value = cache.get(point.key)
            if hit:
                replayed = point.key in prior.done
                _finish(
                    point,
                    value,
                    cached=True,
                    replayed=replayed,
                    wall_s=0.0,
                    attempts=0,
                )
                if not replayed:
                    # A replayed point already has its terminal record; a
                    # second one would only fold as a stale duplicate.
                    journal.append(
                        "point.done",
                        point=point.point_id,
                        key=point.key,
                        cached=True,
                        wall_s=0.0,
                        attempt=0,
                    )
                registry.counter("campaign.points.cached").inc()
                continue
        pending.append(
            _PointState(
                point=point,
                worker_faults=worker_faults,
                poisoned=poisoned,
                expire_lease=expire_lease,
                corrupt_journal=corrupt_journal,
            )
        )

    total_tasks = len(pending)
    effective_jobs = jobs if jobs is not None else (os.cpu_count() or 1)
    effective_jobs = max(1, min(effective_jobs, max(total_tasks, 1)))

    if live_sink is not None:
        live_sink.emit(
            "run.start",
            ids=sorted({p.experiment for p in points}),
            campaign=spec.name,
            experiments=len({p.experiment for p in points}),
            tasks=total_tasks,
            jobs=effective_jobs,
            seed=seed,
            retries=retries,
        )
        for point in points:
            outcome = outcomes.get(point.key)
            if outcome is not None and outcome.status == "ok":
                live_sink.part_state(point.experiment, point.part_label, "cached")
        for state in pending:
            live_sink.part_state(
                state.point.experiment, state.point.part_label, "queued"
            )
        for event in fault_events:
            live_sink.emit("fault", **event)

    lease_counter = 0
    completed = 0

    def _grant_lease(state: _PointState) -> None:
        """Charge one attempt and journal its lease."""
        nonlocal lease_counter
        lease_counter += 1
        state.attempts += 1
        state.lease = f"g{prior.generations + 1}-l{lease_counter}"
        if state.corrupt_journal:
            # One-shot: tear this lease's append exactly like a kill -9.
            from repro.faults import runtime as faults_runtime

            faults_runtime.arm("campaign.journal.corrupt")
            state.corrupt_journal = False
        journal.append(
            "point.lease",
            point=state.point.point_id,
            key=state.point.key,
            lease=state.lease,
            attempt=state.attempts,
        )
        registry.counter("campaign.leases.granted").inc()

    def _fail_or_retry(state: _PointState, kind: str, message: str,
                       queue: Deque[_PointState]) -> None:
        """Seeded-backoff retry while attempts remain, else quarantine."""
        if state.attempts < max_attempts:
            delay_s = backoff_s(seed, state.point.label, state.attempts)
            state.ready_at = time.perf_counter() + delay_s
            # Worker faults are one-shot; poison re-arms by staying set.
            state.worker_faults = ()
            journal.append(
                "point.retry",
                point=state.point.point_id,
                key=state.point.key,
                attempt=state.attempts,
                kind=kind,
                error=message,
                backoff_s=round(delay_s, 4),
            )
            registry.counter("campaign.points.retried").inc()
            registry.histogram("runner.retry.backoff_s").observe(delay_s)
            if live_sink is not None:
                live_sink.part_state(
                    state.point.experiment,
                    state.point.part_label,
                    "retrying",
                    attempt=state.attempts,
                    kind=kind,
                    backoff_s=round(delay_s, 4),
                )
            emit(
                f"[retry] {state.point.label} attempt "
                f"{state.attempts}/{max_attempts} failed ({kind}: {message});"
                f" requeueing in {delay_s:.3f}s"
            )
            queue.append(state)
            return
        _quarantine_point(state.point, state.attempts, f"{kind}: {message}")

    def _record(state: _PointState, outcome_obj: TaskOutcome) -> None:
        nonlocal completed
        completed += 1
        if cache is not None:
            cache.put(
                state.point.key,
                outcome_obj.result,
                meta={
                    "experiment": state.point.experiment,
                    "part": state.point.part,
                    "target": state.point.target,
                    "seed": state.point.seed,
                    "campaign": spec.name,
                    "duration_s": round(outcome_obj.wall_s, 6),
                },
            )
        _finish(
            state,
            outcome_obj.result,
            cached=False,
            replayed=False,
            wall_s=outcome_obj.wall_s,
            attempts=state.attempts,
        )
        journal.append(
            "point.done",
            point=state.point.point_id,
            key=state.point.key,
            cached=False,
            wall_s=round(outcome_obj.wall_s, 4),
            attempt=state.attempts,
        )
        registry.counter("campaign.points.executed").inc()
        registry.histogram(
            "campaign.point.wall_s", experiment=state.point.experiment
        ).observe(outcome_obj.wall_s)
        if live_sink is not None:
            live_sink.part_state(
                state.point.experiment,
                state.point.part_label,
                "done",
                wall_s=round(outcome_obj.wall_s, 3),
                attempt=state.attempts,
            )
        emit(
            f"[point {completed}/{total_tasks}] {state.point.label} "
            f"{outcome_obj.wall_s:.2f}s"
            + (f" (attempt {state.attempts})" if state.attempts > 1 else "")
        )

    def _task_spec(state: _PointState, obs_ctx: Optional[SpanContext]) -> TaskSpec:
        return TaskSpec(
            experiment_id=state.point.experiment,
            part=state.point.part,
            target=state.point.target,
            kwargs=dict(state.point.kwargs),
            seed=state.point.seed,
            obs=obs_ctx,
            faults=_point_faults(state),
            attempt=state.attempts,
        )

    queue: Deque[_PointState] = deque(pending)
    interrupted = False
    last_heartbeat = time.perf_counter()

    def _heartbeat(in_flight_states: List[_PointState]) -> None:
        """Journal liveness for every in-flight lease, on a fixed cadence."""
        nonlocal last_heartbeat
        now = time.perf_counter()
        if now - last_heartbeat < heartbeat_s:
            return
        last_heartbeat = now
        for state in in_flight_states:
            if state.lease is None:
                continue
            journal.append(
                "point.heartbeat",
                point=state.point.point_id,
                key=state.point.key,
                lease=state.lease,
                attempt=state.attempts,
            )

    with _InterruptGuard() as guard:
        if effective_jobs == 1:
            while queue and not guard.triggered:
                state = queue.popleft()
                wait_s = state.ready_at - time.perf_counter()
                if wait_s > 0:
                    time.sleep(wait_s)
                _grant_lease(state)
                if state.expire_lease:
                    # In-process there is nothing to reclaim mid-task; the
                    # fault degrades to an immediate expiry-and-retry.
                    state.expire_lease = False
                    _fail_or_retry(
                        state, "lease_expired", "injected lease expiry", queue
                    )
                    registry.counter("campaign.leases.expired").inc()
                    continue
                if live_sink is not None:
                    live_sink.part_state(
                        state.point.experiment,
                        state.point.part_label,
                        "running",
                        attempt=state.attempts,
                    )
                try:
                    outcome_obj = execute_task(_task_spec(state, None))
                except Exception as exc:
                    _fail_or_retry(
                        state, "error", f"{type(exc).__name__}: {exc}", queue
                    )
                    continue
                _record(state, outcome_obj)
        elif queue:
            pool = ProcessPoolExecutor(max_workers=effective_jobs)
            in_flight: Dict[Any, _PointState] = {}
            deadlines: Dict[Any, float] = {}
            task_index = 0

            def _rebuild_pool(requeued: int) -> None:
                nonlocal pool
                registry.counter("campaign.pool.rebuilds").inc()
                emit(
                    f"[pool] rebuilding worker pool "
                    f"({requeued} point(s) requeued)"
                )
                stale = list((getattr(pool, "_processes", None) or {}).values())
                try:
                    pool.shutdown(wait=False, cancel_futures=True)
                except Exception:
                    pass
                for proc in stale:
                    try:
                        proc.terminate()
                    except Exception:
                        pass
                pool = ProcessPoolExecutor(max_workers=effective_jobs)

            def _submit(state: _PointState) -> None:
                nonlocal task_index
                task_index += 1
                _grant_lease(state)
                ctx = SpanContext(
                    root_id=campaign_span.span_id if spans.enabled else None,
                    prefix=f"c{task_index:03d}.",
                    obs_enabled=obs_runtime.enabled(),
                    span_detail=spans.detail,
                )
                task = _task_spec(state, ctx)
                try:
                    future = pool.submit(execute_task, task)
                except BrokenProcessPool:
                    _rebuild_pool(requeued=0)
                    future = pool.submit(execute_task, task)
                in_flight[future] = state
                if state.expire_lease:
                    # Born expired: the watchdog pass reclaims it at once.
                    deadlines[future] = float("-inf")
                    state.expire_lease = False
                    registry.counter("campaign.leases.expired").inc()
                else:
                    deadlines[future] = time.perf_counter()
                if live_sink is not None:
                    live_sink.part_state(
                        state.point.experiment,
                        state.point.part_label,
                        "submitted",
                        attempt=state.attempts,
                    )

            def _pop_ready() -> Optional[_PointState]:
                now = time.perf_counter()
                for index, state in enumerate(queue):
                    if state.ready_at <= now:
                        del queue[index]
                        return state
                return None

            try:
                while (queue or in_flight) and not guard.triggered:
                    while (
                        queue
                        and len(in_flight) < effective_jobs
                        and not guard.triggered
                    ):
                        state = _pop_ready()
                        if state is None:
                            break
                        _submit(state)
                    if not in_flight:
                        time.sleep(_POLL_INTERVAL_S)
                        continue
                    done, _ = wait(
                        set(in_flight),
                        timeout=_POLL_INTERVAL_S,
                        return_when=FIRST_COMPLETED,
                    )
                    _heartbeat(list(in_flight.values()))
                    broken = False
                    for future in done:
                        state = in_flight.pop(future)
                        expired = deadlines.pop(future, 0.0) == float("-inf")
                        if expired:
                            # The lease was reclaimed before the result
                            # landed; the attempt is charged and retried
                            # even though the worker finished — exactly a
                            # zombie lease-holder racing its watchdog.
                            _fail_or_retry(
                                state,
                                "lease_expired",
                                "injected lease expiry",
                                queue,
                            )
                            continue
                        try:
                            outcome_obj = future.result()
                        except BrokenProcessPool as exc:
                            broken = True
                            _fail_or_retry(
                                state,
                                "pool_broken",
                                "worker process died mid-point "
                                f"({type(exc).__name__})",
                                queue,
                            )
                        except Exception as exc:
                            _fail_or_retry(
                                state,
                                "error",
                                f"{type(exc).__name__}: {exc}",
                                queue,
                            )
                        else:
                            spans.adopt(outcome_obj.spans)
                            _record(state, outcome_obj)
                    overdue: List[Any] = []
                    now = time.perf_counter()
                    for future, submitted in deadlines.items():
                        if submitted == float("-inf"):
                            overdue.append(future)
                        elif (
                            task_timeout_s is not None
                            and now - submitted > task_timeout_s
                        ):
                            overdue.append(future)
                    if broken or overdue:
                        for future in overdue:
                            state = in_flight.pop(future)
                            was_expired = deadlines.pop(future) == float("-inf")
                            kind = (
                                "lease_expired" if was_expired else "timeout"
                            )
                            message = (
                                "injected lease expiry"
                                if was_expired
                                else f"lease exceeded {task_timeout_s:.1f}s"
                            )
                            emit(
                                f"[watchdog] {state.point.label} "
                                f"({kind}); reclaiming lease {state.lease}"
                            )
                            _fail_or_retry(state, kind, message, queue)
                        for future, state in list(in_flight.items()):
                            if broken:
                                _fail_or_retry(
                                    state,
                                    "pool_broken",
                                    "worker pool broke while point was "
                                    "in flight",
                                    queue,
                                )
                            else:
                                # Innocent victim of the rebuild: uncharged.
                                state.attempts -= 1
                                queue.append(state)
                        requeued = len(in_flight)
                        in_flight.clear()
                        deadlines.clear()
                        _rebuild_pool(requeued)
            finally:
                stale = list((getattr(pool, "_processes", None) or {}).values())
                try:
                    pool.shutdown(wait=False, cancel_futures=True)
                except Exception:
                    pass
                if guard.triggered:
                    for proc in stale:
                        try:
                            proc.terminate()
                        except Exception:
                            pass
        interrupted = guard.triggered

    if interrupted:
        emit("[interrupt] signal received; journal preserved for --resume")
        for state in pending:
            if state.point.key not in outcomes:
                if live_sink is not None:
                    live_sink.part_state(
                        state.point.experiment,
                        state.point.part_label,
                        "interrupted",
                    )

    ordered_outcomes = [
        outcomes[point.key] for point in points if point.key in outcomes
    ]
    wall_s = time.perf_counter() - started
    ok_count = sum(1 for o in ordered_outcomes if o.ok)
    quarantined_count = sum(
        1 for o in ordered_outcomes if o.status == "quarantined"
    )
    if not interrupted:
        journal.append(
            "campaign.done",
            campaign=spec.name,
            ok=ok_count,
            quarantined=quarantined_count,
            wall_s=round(wall_s, 3),
        )
    spans.end(
        campaign_span,
        ok=ok_count,
        quarantined=quarantined_count,
        interrupted=interrupted,
    )
    registry.gauge("campaign.run.wall_s").set(wall_s)
    registry.gauge("campaign.run.points").set(len(points))
    if live_sink is not None:
        live_sink.emit(
            "run.done",
            campaign=spec.name,
            ok=ok_count,
            failed=quarantined_count,
            cache_hits=sum(1 for o in ordered_outcomes if o.cached),
            wall_s=round(wall_s, 3),
            interrupted=interrupted,
        )

    manifest: Dict[str, Any] = {}
    if not interrupted:
        manifest = build_manifest(spec, fingerprint, ordered_outcomes)

    return CampaignResult(
        spec=spec,
        seed=seed,
        code_fingerprint=fingerprint,
        outcomes=ordered_outcomes,
        journal_path=str(journal_path),
        manifest=manifest,
        wall_s=wall_s,
        interrupted=interrupted,
        generations=prior.generations + 1,
        journal_dropped=prior.dropped,
        journal_quarantined=journal_quarantined,
        fault_events=fault_events,
    )
