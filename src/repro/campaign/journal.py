"""The campaign journal: an append-only, kill -9-tolerant progress log.

Every campaign state transition — opens, leases, heartbeats, retries,
completions, quarantines — is one JSONL record appended via
:func:`repro.obs.ioutil.append_line` (single ``O_APPEND`` write, no
in-place mutation ever). Crash recovery is therefore a *fold* over the
file, and the fold is hardened against exactly the damage a hard kill can
inflict:

* **Torn trailing line** — a ``kill -9`` mid-append leaves a final line
  without its newline (or with truncated JSON). The fold drops it and
  reports ``torn_tail``; the at-most-one lost record is re-derived by
  re-running its point (whose *result*, if it completed, is still in the
  content-addressed cache).
* **Duplicate / stale seqs** — a resumed generation replaying records, or
  a lease/heartbeat arriving after its point reached a terminal state,
  is dropped and counted, never double-folded. First terminal record wins,
  which is what keeps resume byte-identical to an uninterrupted run.
* **Corrupt journal** — a malformed line *before* the tail cannot be a
  torn append (appends are strictly sequential), so the whole file is
  untrustworthy; :func:`load_journal` moves it into a ``quarantine/``
  sibling directory — exactly the :class:`~repro.runner.cache.ResultCache`
  convention: observable, autopsy-able, never silently destroyed — and
  recovery restarts from the cache alone.

The journal records *how* the campaign ran (attempts, leases, walls);
nothing in it feeds the campaign manifest's result bytes, which are a pure
function of spec + seed + cached results. That separation is what makes
"SIGKILL, resume, byte-identical manifest" hold.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.faults import runtime as faults_runtime
from repro.obs import runtime as obs_runtime
from repro.obs.ioutil import append_line

#: Bump on any breaking change to the journal record layout.
JOURNAL_SCHEMA_VERSION = 1

#: Default journal filename, written next to the campaign manifest.
JOURNAL_FILENAME = "campaign.jsonl"

#: Event types whose target point has reached its final state.
_TERMINAL_EVENTS = frozenset({"point.done", "point.quarantined"})

#: Fault point torn into an append when armed (see
#: :data:`repro.faults.plan.INFRA_FAULT_POINTS`).
CORRUPT_FAULT_POINT = "campaign.journal.corrupt"


class CampaignJournal:
    """Appender for one campaign's journal (sequential seqs, crash-safe).

    ``start_seq`` continues a resumed campaign's numbering — the fold
    treats a restarted-from-1 generation's records as duplicates, so a
    resuming manager must pass the folded ``last_seq``.
    """

    def __init__(self, path: Union[str, Path], start_seq: int = 0) -> None:
        self.path = Path(path)
        self._seq = int(start_seq)

    @property
    def seq(self) -> int:
        """The last sequence number appended (or inherited)."""
        return self._seq

    def append(self, event_type: str, **fields: Any) -> Dict[str, Any]:
        """Append one record; returns it (including its ``seq``).

        When the ``campaign.journal.corrupt`` fault point is armed, the
        line is torn mid-byte without a newline — byte-for-byte what a
        ``kill -9`` between ``write`` and completion leaves behind. If the
        campaign dies right there the tail is torn (tolerated on fold); if
        it keeps appending, the next line glues onto the fragment and the
        fold sees mid-file corruption (journal quarantined on resume).
        """
        self._seq += 1
        record: Dict[str, Any] = {
            "schema": JOURNAL_SCHEMA_VERSION,
            "seq": self._seq,
            "type": event_type,
        }
        record.update(fields)
        line = json.dumps(record, sort_keys=True)
        if faults_runtime.consume(CORRUPT_FAULT_POINT):
            torn = line[: max(1, len(line) // 2)]
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "ab") as handle:
                handle.write(torn.encode("utf-8"))
            obs_runtime.get_registry().counter("campaign.journal.torn").inc()
            return record
        append_line(self.path, line)
        return record


@dataclass
class JournalState:
    """The recovery fold's output: exact campaign progress at last append."""

    path: str = ""
    exists: bool = False
    #: Latest ``campaign.open`` record (the current generation's header).
    campaign: Optional[Dict[str, Any]] = None
    #: How many generations (``campaign.open`` records) the journal holds.
    generations: int = 0
    #: cache key → first ``point.done`` record.
    done: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: cache key → first ``point.quarantined`` record.
    quarantined: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: cache key → highest charged attempt number seen.
    attempts: Dict[str, int] = field(default_factory=dict)
    #: cache key → latest lease/heartbeat record for a non-terminal point
    #: (work that was in flight when the journal stopped).
    leases: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Latest ``campaign.done`` of the current generation, if it finished.
    finished: Optional[Dict[str, Any]] = None
    last_seq: int = 0
    records: int = 0
    #: Duplicate-seq or stale (post-terminal) records dropped by the fold.
    dropped: int = 0
    #: Final line lacked its newline or failed to parse (kill mid-append).
    torn_tail: bool = False
    #: A non-final line was malformed — the journal cannot be trusted.
    corrupt: bool = False
    #: Set by :func:`load_journal` when a corrupt journal was moved aside.
    quarantined_path: Optional[str] = None

    def terminal_keys(self) -> frozenset:
        """Keys whose points need no further execution."""
        return frozenset(self.done) | frozenset(self.quarantined)


def fold_journal(path: Union[str, Path]) -> JournalState:
    """Reconstruct campaign progress from the journal file.

    Pure and total: never raises on damaged input, never mutates the file.
    The fold is associative over stream prefixes (like the live-watch
    replay), so the state after a crash is exactly the state the writer
    had after its last *complete* append.
    """
    state = JournalState(path=str(path))
    try:
        blob = Path(path).read_bytes()
    except OSError:
        return state
    state.exists = True
    lines = blob.splitlines(keepends=True)
    seen_seqs: set = set()
    for index, raw in enumerate(lines):
        final = index == len(lines) - 1
        if not raw.endswith(b"\n"):
            # Appends are newline-terminated; only a kill mid-write leaves
            # an unterminated line, and only ever at the tail.
            state.torn_tail = True
            break
        text = raw.strip()
        if not text:
            continue
        try:
            record = json.loads(text)
        except (ValueError, UnicodeDecodeError):
            record = None
        if not isinstance(record, dict) or not isinstance(
            record.get("seq"), int
        ):
            if final:
                state.torn_tail = True
                break
            state.corrupt = True
            break
        seq = record["seq"]
        if seq in seen_seqs:
            state.dropped += 1
            continue
        seen_seqs.add(seq)
        state.last_seq = max(state.last_seq, seq)
        state.records += 1
        _apply(state, record)
    return state


def _apply(state: JournalState, record: Dict[str, Any]) -> None:
    """Fold one well-formed record into the state."""
    kind = record.get("type")
    if kind == "campaign.open":
        state.campaign = record
        state.generations += 1
        # A new generation supersedes any earlier completion marker and
        # abandons leases that were in flight when the previous one died.
        state.finished = None
        state.leases.clear()
        return
    if kind == "campaign.done":
        state.finished = record
        return
    key = record.get("key")
    if not isinstance(key, str):
        return
    terminal = key in state.done or key in state.quarantined
    if kind == "point.done":
        if terminal:
            state.dropped += 1
            return
        state.done[key] = record
        state.leases.pop(key, None)
        return
    if kind == "point.quarantined":
        if terminal:
            state.dropped += 1
            return
        state.quarantined[key] = record
        state.leases.pop(key, None)
        return
    if terminal:
        # Lease/heartbeat/retry for an already-finished point: stale
        # delivery (e.g. a replayed generation); drop, never regress.
        state.dropped += 1
        return
    if kind in ("point.lease", "point.heartbeat"):
        state.leases[key] = record
    if kind in ("point.lease", "point.retry"):
        attempt = record.get("attempt")
        if isinstance(attempt, int):
            state.attempts[key] = max(state.attempts.get(key, 0), attempt)


def quarantine_journal(path: Union[str, Path]) -> Optional[Path]:
    """Move a corrupt journal into a ``quarantine/`` sibling directory.

    Mirrors :meth:`repro.runner.cache.ResultCache.quarantine`: the bytes
    stay available for autopsy, the event is counted on
    ``campaign.journal.quarantined``, and the caller starts a fresh
    journal. Returns the new location (``None`` when the file vanished
    first — nothing to preserve).
    """
    import os

    path = Path(path)
    quarantine_dir = path.parent / "quarantine"
    quarantine_dir.mkdir(parents=True, exist_ok=True)
    index = 0
    while True:
        target = quarantine_dir / f"{path.name}.{index}"
        if not target.exists():
            break
        index += 1
    try:
        os.replace(path, target)
    except OSError:
        return None
    obs_runtime.get_registry().counter("campaign.journal.quarantined").inc()
    return target


def load_journal(path: Union[str, Path]) -> JournalState:
    """Fold the journal, quarantining it first if the fold finds corruption.

    The double fold (probe, quarantine, return empty) keeps the contract
    simple for the manager: the returned state is always safe to resume
    from — a corrupt journal degrades to "no journal", and completed work
    still replays from the result cache.
    """
    state = fold_journal(path)
    if not state.corrupt:
        return state
    moved = quarantine_journal(path)
    fresh = JournalState(path=str(path))
    fresh.quarantined_path = str(moved) if moved is not None else None
    return fresh
