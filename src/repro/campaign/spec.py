"""Campaign specs: declarative parameter grids over registry experiments.

A spec file is JSON::

    {
      "schema": 1,
      "campaign": "qdepth-sensitivity",
      "seeds": [0, 1, 2],
      "experiments": [
        {"experiment": "fig12", "axes": {"occupancy": [0.4, 0.6, 0.8]}},
        {"experiment": "fig7",  "axes": {"duration_s": [2.0, 5.0]}},
        {"experiment": "fig9"}
      ]
    }

Each entry names a registry experiment; ``axes`` maps driver keyword
arguments to value lists (validated against the driver's signature — a
typo'd axis is a configuration error, not a silent no-op, and ``repro
lint`` enforces the same contract statically via PW007). ``seeds`` are
replicates applied to every seed-accepting driver; pure-analytic drivers
collapse to a single point per axis combination.

:meth:`CampaignSpec.expand` is deterministic — entries in file order, axes
in sorted-name order, values and seeds in listed order — and every
:class:`CampaignPoint` is content-addressed by the *same*
:func:`repro.runner.cache.cache_key` the runner uses, so a re-run (or a
``run-all`` that happened to execute the identical driver call) replays
from ``.repro_cache/`` instead of recomputing.
"""

from __future__ import annotations

import hashlib
import inspect
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.experiments.registry import SPECS
from repro.runner.cache import cache_key

#: Bump on any breaking change to the campaign spec layout.
CAMPAIGN_SCHEMA_VERSION = 1

#: Directory the lint walk (and convention) expects campaign specs in.
DEFAULT_SPEC_DIR = "campaigns"


def _axis_value_text(value: Any) -> str:
    """Canonical short form of one axis value for part names."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class SweepEntry:
    """One experiment's grid: the id plus its axis value lists."""

    experiment: str
    #: ``(axis name, value tuple)`` pairs, sorted by axis name.
    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()

    def combinations(self) -> List[Dict[str, Any]]:
        """Every axis-value combination, in deterministic grid order."""
        if not self.axes:
            return [{}]
        names = [name for name, _values in self.axes]
        value_lists = [values for _name, values in self.axes]
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*value_lists)
        ]


@dataclass(frozen=True)
class CampaignPoint:
    """One expanded, content-addressed unit of campaign work."""

    campaign: str
    experiment: str
    #: ``"all"`` for an axis-free entry, else ``"occupancy=0.6"``-style.
    part: str
    target: str
    kwargs: Dict[str, Any] = field(default_factory=dict)
    #: Swept axis values only (``kwargs`` minus the seed), for reporting.
    axes: Dict[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None
    #: :func:`repro.runner.cache.cache_key` content address.
    key: str = ""

    @property
    def point_id(self) -> str:
        """Stable human-readable identity (journal and manifest key)."""
        return self.label

    @property
    def label(self) -> str:
        """``experiment:part[#s<seed>]`` — what fault scopes match against."""
        suffix = f"#s{self.seed}" if self.seed is not None else ""
        return f"{self.experiment}:{self.part}{suffix}"

    @property
    def part_label(self) -> str:
        """The part name live events carry (seed-qualified so replicates
        occupy distinct watch-board rows)."""
        suffix = f"#s{self.seed}" if self.seed is not None else ""
        return f"{self.part}{suffix}"


@dataclass(frozen=True)
class CampaignSpec:
    """One parsed, validated campaign definition."""

    name: str
    entries: Tuple[SweepEntry, ...]
    seeds: Tuple[int, ...] = (0,)
    path: str = "<spec>"

    def digest(self) -> str:
        """SHA-256 over the canonical spec content (not the file bytes), so
        reformatting a spec does not orphan its journal."""
        payload = json.dumps(
            {
                "schema": CAMPAIGN_SCHEMA_VERSION,
                "campaign": self.name,
                "seeds": list(self.seeds),
                "experiments": [
                    {
                        "experiment": entry.experiment,
                        "axes": {
                            name: list(values) for name, values in entry.axes
                        },
                    }
                    for entry in self.entries
                ],
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def expand(self, fingerprint: str) -> List[CampaignPoint]:
        """Deterministically expand the grid into content-addressed points.

        Entries in spec order, axis combinations in grid order, seeds in
        listed order; drivers that take no seed collapse the replicate
        dimension to one point. Equal ``(spec, fingerprint)`` always yields
        the equal point list — resume and fresh runs agree byte-for-byte.
        """
        points: List[CampaignPoint] = []
        seen: Dict[str, str] = {}
        for entry in self.entries:
            spec = SPECS[entry.experiment]
            accepts_seed = spec.accepts_seed()
            seeds: Tuple[Optional[int], ...] = (
                self.seeds if accepts_seed else (None,)
            )
            for combo in entry.combinations():
                part = (
                    ";".join(
                        f"{name}={_axis_value_text(value)}"
                        for name, value in sorted(combo.items())
                    )
                    or "all"
                )
                for seed in seeds:
                    kwargs = dict(combo)
                    if seed is not None:
                        kwargs["seed"] = seed
                    point = CampaignPoint(
                        campaign=self.name,
                        experiment=entry.experiment,
                        part=part,
                        target=spec.target,
                        kwargs=kwargs,
                        axes=dict(combo),
                        seed=seed,
                        key=cache_key(
                            entry.experiment,
                            part,
                            spec.target,
                            kwargs,
                            seed,
                            fingerprint,
                        ),
                    )
                    if point.point_id in seen:
                        raise ConfigurationError(
                            f"{self.path}: duplicate campaign point "
                            f"{point.point_id!r} (is {entry.experiment!r} "
                            "listed twice with overlapping axes?)"
                        )
                    seen[point.point_id] = point.key
                    points.append(point)
        return points


def _driver_axis_names(experiment_id: str) -> Tuple[Optional[frozenset], bool]:
    """``(keyword names, accepts_arbitrary)`` of an experiment's driver.

    ``None`` names with ``accepts_arbitrary=True`` means the signature
    could not be resolved (broken registry target) — the caller decides
    whether that is fatal.
    """
    spec = SPECS[experiment_id]
    try:
        signature = inspect.signature(spec.resolve())
    except (ConfigurationError, ValueError, TypeError):
        return None, True
    names = set()
    var_keyword = False
    for parameter in signature.parameters.values():
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            var_keyword = True
        elif parameter.kind in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        ):
            names.add(parameter.name)
    return frozenset(names), var_keyword


def validate_campaign_data(data: Any) -> List[Tuple[str, str]]:
    """Structural validation shared by the parser and the PW007 lint rule.

    Returns ``(message, needle)`` pairs — the needle is a source-text
    fragment the lint pass greps for to attach a line number; the parser
    only cares about the messages. Empty list means the data is a valid
    campaign spec.
    """
    problems: List[Tuple[str, str]] = []
    if not isinstance(data, dict):
        return [("campaign spec must be a JSON object", "")]
    name = data.get("campaign")
    if not isinstance(name, str) or not name:
        problems.append(
            ("campaign spec needs a non-empty 'campaign' name", '"campaign"')
        )
    schema = data.get("schema", CAMPAIGN_SCHEMA_VERSION)
    if schema != CAMPAIGN_SCHEMA_VERSION:
        problems.append(
            (
                f"unsupported campaign schema {schema!r} "
                f"(supported: {CAMPAIGN_SCHEMA_VERSION})",
                '"schema"',
            )
        )
    seeds = data.get("seeds", [0])
    if not isinstance(seeds, list) or not seeds or any(
        not isinstance(seed, int) or isinstance(seed, bool) for seed in seeds
    ):
        problems.append(
            ("'seeds' must be a non-empty list of integers", '"seeds"')
        )
    elif len(set(seeds)) != len(seeds):
        problems.append(("'seeds' contains duplicates", '"seeds"'))
    entries = data.get("experiments")
    if not isinstance(entries, list) or not entries:
        problems.append(
            (
                "campaign spec needs a non-empty 'experiments' list",
                '"experiments"',
            )
        )
        return problems
    for index, entry in enumerate(entries):
        where = f"experiments[{index}]"
        if not isinstance(entry, dict):
            problems.append((f"{where} must be an object", '"experiments"'))
            continue
        experiment = entry.get("experiment")
        needle = (
            json.dumps(experiment) if isinstance(experiment, str) else '"experiment"'
        )
        if not isinstance(experiment, str):
            problems.append(
                (f"{where} needs an 'experiment' id", '"experiment"')
            )
            continue
        if experiment not in SPECS:
            problems.append(
                (
                    f"{where}: unknown experiment {experiment!r}; known: "
                    f"{sorted(SPECS)}",
                    needle,
                )
            )
            continue
        unknown_keys = set(entry) - {"experiment", "axes"}
        if unknown_keys:
            problems.append(
                (
                    f"{where}: unknown key(s) {sorted(unknown_keys)}",
                    needle,
                )
            )
        axes = entry.get("axes", {})
        if not isinstance(axes, dict):
            problems.append((f"{where}: 'axes' must be an object", '"axes"'))
            continue
        valid_names, accepts_arbitrary = _driver_axis_names(experiment)
        for axis, values in axes.items():
            axis_needle = json.dumps(axis)
            if axis == "seed":
                problems.append(
                    (
                        f"{where}: axis 'seed' is not allowed — use the "
                        "top-level 'seeds' replicate list",
                        axis_needle,
                    )
                )
                continue
            if (
                valid_names is not None
                and axis not in valid_names
                and not accepts_arbitrary
            ):
                problems.append(
                    (
                        f"{where}: axis {axis!r} is not a keyword of "
                        f"{experiment!r}'s driver; accepted: "
                        f"{sorted(valid_names)}",
                        axis_needle,
                    )
                )
                continue
            if not isinstance(values, list) or not values:
                problems.append(
                    (
                        f"{where}: axis {axis!r} needs a non-empty value list",
                        axis_needle,
                    )
                )
    return problems


def parse_campaign_spec(data: Any, path: str = "<spec>") -> CampaignSpec:
    """Build a validated :class:`CampaignSpec` from already-parsed JSON."""
    problems = validate_campaign_data(data)
    if problems:
        details = "; ".join(message for message, _needle in problems)
        raise ConfigurationError(f"{path}: {details}")
    entries = tuple(
        SweepEntry(
            experiment=entry["experiment"],
            axes=tuple(
                (name, tuple(values))
                for name, values in sorted(entry.get("axes", {}).items())
            ),
        )
        for entry in data["experiments"]
    )
    return CampaignSpec(
        name=data["campaign"],
        entries=entries,
        seeds=tuple(data.get("seeds", [0])),
        path=path,
    )


def load_campaign_spec(path: Union[str, Path]) -> CampaignSpec:
    """Read and validate one campaign spec file."""
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ConfigurationError(
            f"cannot read campaign spec {path}: {exc}"
        ) from exc
    return parse_campaign_spec(data, path=str(path))
