"""Tests for the §8(d) PDoS extension, the latency tracker, and the CLI."""

import pytest

from repro.cli import main as cli_main
from repro.core.config import Scheme
from repro.core.pdos import PdosAttacker, PdosWatchdog
from repro.core.router import PoWiFiRouter, RouterConfig
from repro.errors import ConfigurationError
from repro.mac80211.frames import FrameJob
from repro.mac80211.medium import Medium
from repro.mac80211.station import Station
from repro.netstack.latency import LatencyTracker
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def one_channel_router(seed=0):
    sim = Simulator()
    streams = RandomStreams(seed)
    medium = Medium(sim, channel=1)
    router = PoWiFiRouter(
        sim,
        {1: medium},
        streams,
        RouterConfig(scheme=Scheme.POWIFI, channels=(1,), client_channel=1),
    )
    return sim, streams, medium, router


class TestPdosAttack:
    def test_attack_starves_power_delivery(self):
        """§8(d): carrier-sense events from a rogue device cause power
        starvation."""
        sim, streams, medium, router = one_channel_router()
        router.start()
        sim.run(until=1.0)
        before = router.analyzers[1].occupancy(0.0, 1.0)
        attacker = PdosAttacker(sim, medium, streams)
        attacker.start()
        sim.run(until=3.0)
        during = router.analyzers[1].occupancy(2.0, 3.0)
        assert before > 0.5
        assert during < 0.2 * before

    def test_partial_duty_attack_partially_starves(self):
        sim, streams, medium, router = one_channel_router()
        attacker = PdosAttacker(sim, medium, streams, duty=0.3)
        router.start()
        attacker.start()
        sim.run(until=2.0)
        occupancy = router.analyzers[1].occupancy(1.0, 2.0)
        assert 0.05 < occupancy < 0.6

    def test_attacker_stop(self):
        sim, streams, medium, router = one_channel_router()
        attacker = PdosAttacker(sim, medium, streams)
        router.start()
        attacker.start()
        sim.run(until=1.0)
        attacker.stop()
        sim.run(until=3.0)
        # Power delivery recovers once the attack ceases.
        assert router.analyzers[1].occupancy(2.0, 3.0) > 0.4

    def test_duty_validation(self):
        sim, streams, medium, router = one_channel_router()
        with pytest.raises(ConfigurationError):
            PdosAttacker(sim, medium, streams, duty=0.0)


class TestPdosWatchdog:
    def test_no_alerts_without_attack(self):
        sim, streams, medium, router = one_channel_router()
        watchdog = PdosWatchdog(sim, medium, router.analyzers[1].occupancy)
        router.start()
        watchdog.start()
        sim.run(until=4.0)
        assert watchdog.alerts == []
        assert not watchdog.under_attack

    def test_alerts_fire_under_attack(self):
        sim, streams, medium, router = one_channel_router()
        watchdog = PdosWatchdog(
            sim, medium, router.analyzers[1].occupancy, window_s=0.5
        )
        router.start()
        watchdog.start()
        sim.run(until=1.0)
        attacker = PdosAttacker(sim, medium, streams)
        attacker.start()
        sim.run(until=4.0)
        assert watchdog.under_attack
        assert len(watchdog.alerts) >= 1
        alert = watchdog.alerts[0]
        assert alert.medium_busy_fraction > 0.5
        assert alert.power_occupancy < 0.2

    def test_no_alert_when_merely_idle(self):
        """An idle medium must not look like an attack."""
        sim = Simulator()
        streams = RandomStreams(0)
        medium = Medium(sim, channel=1)
        router = PoWiFiRouter(
            sim, {1: medium}, streams,
            RouterConfig(scheme=Scheme.BASELINE, channels=(1,), client_channel=1),
        )
        watchdog = PdosWatchdog(sim, medium, router.analyzers[1].occupancy)
        router.start()
        watchdog.start()
        sim.run(until=4.0)
        assert watchdog.alerts == []

    def test_validation(self):
        sim, streams, medium, router = one_channel_router()
        with pytest.raises(ConfigurationError):
            PdosWatchdog(sim, medium, router.analyzers[1].occupancy, window_s=0.0)
        with pytest.raises(ConfigurationError):
            PdosWatchdog(
                sim, medium, router.analyzers[1].occupancy, share_threshold=1.5
            )


class TestLatencyTracker:
    def _hop(self):
        sim = Simulator()
        streams = RandomStreams(0)
        medium = Medium(sim, channel=1)
        station = Station(sim, name="ap", streams=streams)
        medium.attach(station)
        return sim, station

    def test_records_per_frame_latency(self):
        sim, station = self._hop()
        tracker = LatencyTracker()
        for _ in range(5):
            frame = FrameJob(mac_bytes=1536, rate_mbps=54.0, broadcast=True)
            station.enqueue(tracker.instrument(frame))
        sim.run()
        assert tracker.count == 5
        assert all(s.latency_s > 200e-6 for s in tracker.samples)

    def test_queueing_increases_latency(self):
        sim, station = self._hop()
        tracker = LatencyTracker()
        for _ in range(10):
            station.enqueue(
                tracker.instrument(FrameJob(mac_bytes=1536, rate_mbps=54.0, broadcast=True))
            )
        sim.run()
        latencies = tracker.latencies_s()
        # Later frames waited behind earlier ones.
        assert latencies[-1] > latencies[0]

    def test_chains_existing_callback(self):
        sim, station = self._hop()
        tracker = LatencyTracker()
        seen = []
        frame = FrameJob(
            mac_bytes=500,
            rate_mbps=54.0,
            broadcast=True,
            on_complete=lambda f, ok, t: seen.append(ok),
        )
        station.enqueue(tracker.instrument(frame))
        sim.run()
        assert seen == [True]
        assert tracker.count == 1

    def test_statistics(self):
        sim, station = self._hop()
        tracker = LatencyTracker()
        for _ in range(20):
            station.enqueue(
                tracker.instrument(FrameJob(mac_bytes=1536, rate_mbps=54.0, broadcast=True))
            )
        sim.run()
        assert tracker.percentile_s(0) <= tracker.mean_latency_s() <= tracker.percentile_s(100)

    def test_empty_statistics_rejected(self):
        tracker = LatencyTracker()
        with pytest.raises(ConfigurationError):
            tracker.mean_latency_s()
        with pytest.raises(ConfigurationError):
            tracker.percentile_s(50)


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "table1" in out

    def test_quickstart(self, capsys):
        assert cli_main(["quickstart", "--duration", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "cumulative" in out

    def test_table1(self, capsys):
        assert cli_main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "matches paper: True" in out

    def test_fig9(self, capsys):
        assert cli_main(["fig9"]) == 0
        out = capsys.readouterr().out
        assert "battery-free" in out

    def test_unknown_experiment(self, capsys):
        assert cli_main(["fig99"]) == 2
