"""Analog harvester tests: diode, matching, rectifier, DC-DC."""

import math

import pytest

from repro.errors import CircuitError
from repro.harvester.dcdc import SeikoSz882, TiBq25570, TiBq25570Standalone, _interp
from repro.harvester.diode import SMS7630, THERMAL_VOLTAGE, DiodeParameters
from repro.harvester.matching import (
    LMatchingNetwork,
    RectifierImpedanceModel,
    battery_free_matching,
    battery_recharging_matching,
)
from repro.harvester.rectifier import VoltageDoubler
from repro.mac80211.channels import WIFI_BAND_START_HZ, WIFI_BAND_STOP_HZ


class TestDiode:
    def test_zero_voltage_zero_current(self):
        assert SMS7630.current(0.0) == 0.0

    def test_current_monotone(self):
        assert SMS7630.current(0.2) > SMS7630.current(0.1) > SMS7630.current(0.05)

    def test_forward_drop_inverts_current(self):
        current = SMS7630.current(0.15)
        # forward_drop includes the Rs term, so it is >= the junction value.
        assert SMS7630.forward_drop(current) >= 0.15

    def test_forward_drop_rejects_negative(self):
        with pytest.raises(CircuitError):
            SMS7630.forward_drop(-1e-3)

    def test_zero_bias_resistance(self):
        expected = SMS7630.ideality * THERMAL_VOLTAGE / SMS7630.saturation_current_a
        assert SMS7630.zero_bias_resistance() == pytest.approx(expected)

    def test_zero_bias_resistance_is_kilohms(self):
        # This is why the unloaded rectifier mismatches: multi-kilohm input.
        assert 3000 < SMS7630.zero_bias_resistance() < 10000

    def test_validation(self):
        with pytest.raises(CircuitError):
            DiodeParameters(saturation_current_a=0.0)
        with pytest.raises(CircuitError):
            DiodeParameters(ideality=0.5)

    def test_overflow_clamped(self):
        assert math.isfinite(SMS7630.current(10.0))


class TestMatchingNetwork:
    def test_battery_free_meets_minus_10db(self):
        assert battery_free_matching().worst_return_loss_db() < -10.0

    def test_battery_recharging_meets_minus_10db(self):
        assert battery_recharging_matching().worst_return_loss_db() < -10.0

    def test_reflection_penalty_below_half_db(self):
        """The paper's claim: <0.5 dB of power lost to reflection."""
        for network in (battery_free_matching(), battery_recharging_matching()):
            worst = network.worst_return_loss_db()
            gamma_sq = 10 ** (worst / 10)
            penalty_db = -10 * math.log10(1 - gamma_sq)
            assert penalty_db < 0.5

    def test_delivered_fraction_high_in_band(self):
        network = battery_free_matching()
        for ghz in (2.412, 2.437, 2.462):
            assert network.delivered_fraction(ghz * 1e9) > 0.9

    def test_unloaded_match_is_worse(self):
        network = battery_free_matching()
        f = 2.437e9
        assert network.delivered_fraction(f, loaded=False) < network.delivered_fraction(
            f, loaded=True
        )

    def test_out_of_band_match_degrades(self):
        network = battery_free_matching()
        in_band = network.return_loss_db(2.437e9)
        far_out = network.return_loss_db(3.5e9)
        assert far_out > in_band  # less negative = worse match

    def test_sweep_covers_requested_span(self):
        sweep = battery_free_matching().sweep_return_loss(2.40e9, 2.48e9, points=81)
        assert len(sweep) == 81
        assert sweep[0][0] == pytest.approx(2.40e9)
        assert sweep[-1][0] == pytest.approx(2.48e9)

    def test_band_constants(self):
        assert WIFI_BAND_STOP_HZ - WIFI_BAND_START_HZ == pytest.approx(72e6)

    def test_validation(self):
        with pytest.raises(CircuitError):
            LMatchingNetwork(inductance_h=0.0)
        with pytest.raises(CircuitError):
            RectifierImpedanceModel(loaded_resistance_ohm=-1.0)
        network = battery_free_matching()
        with pytest.raises(CircuitError):
            network.input_impedance(0.0)
        with pytest.raises(CircuitError):
            network.sweep_return_loss(points=1)

    def test_impedance_is_complex_with_capacitive_part(self):
        model = RectifierImpedanceModel()
        z = model.impedance(2.437e9)
        assert z.imag < 0  # capacitive

    def test_inductor_loss_reduces_q(self):
        lossy = LMatchingNetwork(inductor_q=10)
        clean = LMatchingNetwork(inductor_q=1000)
        # Finite Q adds series resistance -> different input impedance.
        assert lossy.input_impedance(2.437e9) != clean.input_impedance(2.437e9)


class TestVoltageDoubler:
    def test_amplitude_formula(self):
        doubler = VoltageDoubler()
        va = doubler.amplitude_at_rectifier(1e-3, 50.0)
        assert va == pytest.approx(math.sqrt(2 * 1e-3 * 50.0))

    def test_open_circuit_doubles_large_signals(self):
        doubler = VoltageDoubler(knee_voltage_v=0.08)
        assert doubler.open_circuit_voltage(1.0) == pytest.approx(2.0, rel=0.01)

    def test_open_circuit_suppressed_below_knee(self):
        doubler = VoltageDoubler(knee_voltage_v=0.08)
        assert doubler.open_circuit_voltage(0.02) < 2 * 0.02 * 0.5

    def test_breakdown_clamp(self):
        doubler = VoltageDoubler()
        assert doubler.open_circuit_voltage(10.0) == pytest.approx(
            2 * doubler.diode.breakdown_voltage_v
        )

    def test_output_power_zero_at_rails(self):
        doubler = VoltageDoubler()
        assert doubler.output_power(1e-3, 300.0, 0.0) == 0.0
        voc = doubler.open_circuit_voltage(doubler.amplitude_at_rectifier(1e-3, 300.0))
        assert doubler.output_power(1e-3, 300.0, voc) == 0.0

    def test_output_power_peaks_at_half_voc(self):
        doubler = VoltageDoubler()
        delivered, r = 1e-3, 300.0
        vmp = doubler.maximum_power_point(delivered, r)
        peak = doubler.output_power(delivered, r, vmp)
        assert peak > doubler.output_power(delivered, r, vmp * 0.5)
        assert peak > doubler.output_power(delivered, r, vmp * 1.5)

    def test_output_power_conserves_energy(self):
        doubler = VoltageDoubler()
        delivered = 1e-3
        vmp = doubler.maximum_power_point(delivered, 300.0)
        assert doubler.output_power(delivered, 300.0, vmp) <= delivered

    def test_efficiency_increases_with_amplitude(self):
        doubler = VoltageDoubler()
        assert doubler.conversion_efficiency(1.0) > doubler.conversion_efficiency(0.2)

    def test_efficiency_zero_at_zero(self):
        assert VoltageDoubler().conversion_efficiency(0.0) == 0.0

    def test_validation(self):
        with pytest.raises(CircuitError):
            VoltageDoubler(knee_voltage_v=0.0)
        doubler = VoltageDoubler()
        with pytest.raises(CircuitError):
            doubler.amplitude_at_rectifier(-1.0, 300.0)
        with pytest.raises(CircuitError):
            doubler.output_power(1e-3, 300.0, -0.1)


class TestDcDc:
    def test_interp_endpoints_flat(self):
        table = [(0.0, 0.1), (1.0, 0.5)]
        assert _interp(table, -1.0) == 0.1
        assert _interp(table, 2.0) == 0.5

    def test_interp_midpoint(self):
        table = [(0.0, 0.0), (1.0, 1.0)]
        assert _interp(table, 0.25) == pytest.approx(0.25)

    def test_interp_empty_rejected(self):
        with pytest.raises(CircuitError):
            _interp([], 0.5)

    def test_seiko_cold_start_is_300mv(self):
        assert SeikoSz882().cold_start_voltage_v == pytest.approx(0.30)

    def test_seiko_zero_below_cold_start(self):
        seiko = SeikoSz882()
        assert seiko.efficiency(0.25) == 0.0
        assert seiko.transfer(1e-3, 0.25) == 0.0

    def test_seiko_transfers_above_cold_start(self):
        seiko = SeikoSz882()
        assert seiko.transfer(10e-6, 0.5) > 0.0

    def test_bq_cold_start_infinite_with_battery(self):
        assert math.isinf(TiBq25570().cold_start_voltage_v)

    def test_bq_standalone_cold_start_higher_than_seiko(self):
        # This asymmetry is why the camera's battery-free range (17 ft) is
        # shorter than the temperature sensor's (20 ft).
        assert TiBq25570Standalone().cold_start_voltage_v > SeikoSz882().cold_start_voltage_v

    def test_bq_more_efficient_than_seiko(self):
        assert TiBq25570().efficiency(0.5) > SeikoSz882().efficiency(0.5)

    def test_bq_mppt_floor(self):
        bq = TiBq25570()
        assert bq.mppt_operating_voltage(0.1) == pytest.approx(bq.mppt_reference_v)
        assert bq.mppt_operating_voltage(1.0) == pytest.approx(0.5)

    def test_bq_minimum_input(self):
        bq = TiBq25570()
        assert bq.transfer(1e-3, 0.05) == 0.0

    def test_transfer_validation(self):
        with pytest.raises(CircuitError):
            SeikoSz882().transfer(-1.0, 0.5)

    def test_mppt_validation(self):
        with pytest.raises(CircuitError):
            TiBq25570().mppt_operating_voltage(-0.1)
