"""Camera duty-cycle tests plus channel-plan coverage."""

import pytest

from repro.errors import ConfigurationError
from repro.harvester.harvester import battery_free_camera_harvester
from repro.mac80211.channels import (
    CHANNEL_FREQUENCIES_MHZ,
    POWIFI_CHANNELS,
    channel_frequency_hz,
    channels_overlap,
)
from repro.rf.link import LinkBudget, Transmitter
from repro.sensors.duty_cycle import (
    DutyCycleSimulator,
    camera_duty_cycle_simulator,
)


@pytest.fixture
def link():
    return LinkBudget(Transmitter(tx_power_dbm=30.0))


class TestCameraDutyCycle:
    def test_camera_captures_frames_in_range(self, link):
        sim = camera_duty_cycle_simulator(
            battery_free_camera_harvester(), link.received_power_dbm_at_feet(5.0)
        )
        result = sim.run_constant(3600.0, 0.909)
        assert result.count >= 5

    def test_cycle_matches_analytic_inter_frame_time(self, link):
        """The supercap cycle and the Fig 12 energy budget must agree."""
        from repro.sensors.camera import WiFiCamera

        sim = camera_duty_cycle_simulator(
            battery_free_camera_harvester(), link.received_power_dbm_at_feet(5.0)
        )
        result = sim.run_constant(3600.0, 0.909)
        gaps = result.inter_operation_times()
        measured = sum(gaps) / len(gaps)
        analytic = WiFiCamera().evaluate_at(link, 5.0).inter_frame_time_s
        assert 0.5 * analytic < measured < 2.0 * analytic

    def test_no_frames_past_range(self, link):
        sim = camera_duty_cycle_simulator(
            battery_free_camera_harvester(), link.received_power_dbm_at_feet(30.0)
        )
        assert sim.run_constant(1800.0, 0.909).count == 0

    def test_camera_thresholds(self, link):
        sim = camera_duty_cycle_simulator(
            battery_free_camera_harvester(), link.received_power_dbm_at_feet(5.0)
        )
        assert sim.boot_voltage_v == pytest.approx(3.1)
        assert sim.floor_voltage_v == pytest.approx(2.4)

    def test_threshold_validation(self, link):
        from repro.harvester.harvester import battery_free_harvester

        with pytest.raises(ConfigurationError):
            DutyCycleSimulator(
                battery_free_harvester(),
                -10.0,
                1e-6,
                boot_voltage_v=1.0,
                floor_voltage_v=2.0,
            )


class TestChannelPlan:
    def test_channel_frequencies(self):
        assert channel_frequency_hz(1) == pytest.approx(2.412e9)
        assert channel_frequency_hz(6) == pytest.approx(2.437e9)
        assert channel_frequency_hz(11) == pytest.approx(2.462e9)
        assert channel_frequency_hz(14) == pytest.approx(2.484e9)

    def test_unknown_channel_rejected(self):
        with pytest.raises(ConfigurationError):
            channel_frequency_hz(15)

    def test_powifi_channels_pairwise_non_overlapping(self):
        for a in POWIFI_CHANNELS:
            for b in POWIFI_CHANNELS:
                if a != b:
                    assert not channels_overlap(a, b)

    def test_adjacent_channels_overlap(self):
        assert channels_overlap(1, 2)
        assert channels_overlap(6, 8)

    def test_channel_overlaps_itself(self):
        assert channels_overlap(6, 6)

    def test_channel_14_isolated(self):
        assert not channels_overlap(14, 11)
        assert channels_overlap(14, 14)

    def test_all_channels_in_map(self):
        assert set(range(1, 15)).issubset(CHANNEL_FREQUENCIES_MHZ)
