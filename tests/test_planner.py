"""Deployment-planner tests."""

import pytest

from repro.errors import ConfigurationError
from repro.harvester.harvester import battery_recharging_harvester
from repro.planner import (
    DeploymentPlanner,
    Environment,
    PlacementVerdict,
    SensingRequirement,
)
from repro.rf.materials import WALL_MATERIALS
from repro.sensors.mcu import TEMPERATURE_READ_ENERGY_J

TEMP_1HZ = SensingRequirement(
    operation_energy_j=TEMPERATURE_READ_ENERGY_J, target_rate_hz=1.0
)


class TestSensingRequirement:
    def test_required_power(self):
        assert TEMP_1HZ.required_power_w == pytest.approx(2.77e-6)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SensingRequirement(operation_energy_j=0.0, target_rate_hz=1.0)
        with pytest.raises(ConfigurationError):
            SensingRequirement(operation_energy_j=1e-6, target_rate_hz=0.0)


class TestEnvironment:
    def test_defaults(self):
        env = Environment()
        assert env.cumulative_occupancy == 1.0
        assert env.wall is None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Environment(path_loss_exponent=0.0)
        with pytest.raises(ConfigurationError):
            Environment(cumulative_occupancy=-0.1)


class TestPlanner:
    def test_close_placement_feasible(self):
        planner = DeploymentPlanner()
        verdict = planner.evaluate(TEMP_1HZ, 8.0)
        assert verdict.feasible
        assert verdict.achievable_rate_hz > 1.0
        assert verdict.margin_db > 0

    def test_far_placement_infeasible(self):
        planner = DeploymentPlanner()
        verdict = planner.evaluate(TEMP_1HZ, 30.0)
        assert not verdict.feasible
        assert verdict.achievable_rate_hz < 1.0

    def test_max_distance_between_bounds(self):
        planner = DeploymentPlanner()
        max_feet = planner.max_distance_feet(TEMP_1HZ)
        assert 8.0 < max_feet < 22.0
        # Consistency with evaluate().
        assert planner.evaluate(TEMP_1HZ, max_feet).feasible
        assert not planner.evaluate(TEMP_1HZ, max_feet + 1.0).feasible

    def test_wall_shrinks_max_distance(self):
        bare = DeploymentPlanner()
        walled = DeploymentPlanner(
            Environment(wall=WALL_MATERIALS["sheetrock"])
        )
        assert walled.max_distance_feet(TEMP_1HZ) < bare.max_distance_feet(TEMP_1HZ)

    def test_occupancy_extends_reach(self):
        quiet = DeploymentPlanner(Environment(cumulative_occupancy=0.5))
        loud = DeploymentPlanner(Environment(cumulative_occupancy=1.9))
        assert loud.max_distance_feet(TEMP_1HZ) > quiet.max_distance_feet(TEMP_1HZ)

    def test_battery_harvester_reaches_farther(self):
        free = DeploymentPlanner()
        recharging = DeploymentPlanner(harvester=battery_recharging_harvester())
        # At a low-rate requirement the battery build's sensitivity wins.
        slow = SensingRequirement(TEMPERATURE_READ_ENERGY_J, target_rate_hz=0.05)
        assert recharging.max_distance_feet(slow) > free.max_distance_feet(slow)

    def test_required_occupancy_monotone_in_distance(self):
        planner = DeploymentPlanner()
        near = planner.required_occupancy(TEMP_1HZ, 6.0)
        far = planner.required_occupancy(TEMP_1HZ, 12.0)
        assert near is not None and far is not None
        assert far > near

    def test_required_occupancy_none_when_hopeless(self):
        planner = DeploymentPlanner()
        assert planner.required_occupancy(TEMP_1HZ, 45.0) is None

    def test_required_occupancy_self_consistent(self):
        planner = DeploymentPlanner()
        occupancy = planner.required_occupancy(TEMP_1HZ, 10.0)
        check = DeploymentPlanner(Environment(cumulative_occupancy=occupancy))
        assert check.evaluate(TEMP_1HZ, 10.0).feasible

    def test_survey_table(self):
        planner = DeploymentPlanner()
        verdicts = planner.survey(TEMP_1HZ, [5.0, 10.0, 20.0, 30.0])
        assert len(verdicts) == 4
        feasible_flags = [v.feasible for v in verdicts]
        # Once infeasible, farther spots stay infeasible.
        assert feasible_flags == sorted(feasible_flags, reverse=True)

    def test_validation(self):
        planner = DeploymentPlanner()
        with pytest.raises(ConfigurationError):
            planner.evaluate(TEMP_1HZ, 0.0)
        with pytest.raises(ConfigurationError):
            planner.survey(TEMP_1HZ, [])
