"""Unit tests for the domain SLO engine (`repro.obs.slo`).

Everything here is pure-fold territory: spec parsing and validation,
the three evaluator kinds, metric-reference resolution (domain and
``registry:``), run-level assembly, and the determinism contract the
manifest `slo` section rests on.
"""

import json
from pathlib import Path

import pytest

from repro.errors import ObservabilityError
from repro.obs.slo import (
    SLO_SCHEMA_VERSION,
    Objective,
    evaluate_manifest,
    evaluate_objective,
    evaluate_specs,
    exit_code,
    load_default_specs,
    load_spec,
    objective,
    parse_spec,
    render_section,
    resolve_metric,
    section_from_rows,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def spec_data(**overrides):
    """A minimal valid spec dict, overridable per test."""
    data = {
        "schema": SLO_SCHEMA_VERSION,
        "experiment": "fig7",
        "objectives": [
            {
                "id": "client.demo.threshold",
                "metric": "client.demo.value",
                "kind": "threshold",
                "op": ">=",
                "value": 1.0,
            }
        ],
    }
    data.update(overrides)
    return data


class TestObjectiveValidation:
    def test_valid_objective_normalises_numbers(self):
        obj = objective("client.tcp.ratio", "client.tcp.ratio", value=1)
        assert obj.value == 1.0 and isinstance(obj.value, float)

    @pytest.mark.parametrize("bad_id", ["Nope", "single", "a.B.c", "", "a..b"])
    def test_bad_ids_rejected(self, bad_id):
        with pytest.raises(ObservabilityError, match="bad objective id"):
            objective(bad_id, "client.demo.value")

    @pytest.mark.parametrize(
        "bad_metric",
        ["UPPER.case", "plain", "registry:x", "registry:a.b#p95", "registry:a.b#nope"],
    )
    def test_bad_metric_refs_rejected(self, bad_metric):
        with pytest.raises(ObservabilityError, match="bad .*metric reference"):
            objective("client.demo.obj", bad_metric)

    @pytest.mark.parametrize(
        "good_metric",
        [
            "client.tcp.ratio",
            "registry:engine.events.dispatched",
            "registry:harvester.voltage_v{device=cam}#p99",
            "registry:sensor.reads#rate",
        ],
    )
    def test_good_metric_refs_accepted(self, good_metric):
        assert objective("client.demo.obj", good_metric).metric == good_metric

    def test_unknown_kind_op_and_value_rejected(self):
        with pytest.raises(ObservabilityError, match="unknown kind"):
            objective("client.demo.obj", "client.demo.value", kind="slope")
        with pytest.raises(ObservabilityError, match="unknown op"):
            objective("client.demo.obj", "client.demo.value", op=">")
        with pytest.raises(ObservabilityError, match="value must be a number"):
            objective("client.demo.obj", "client.demo.value", value="1.0")
        with pytest.raises(ObservabilityError, match="value must be a number"):
            objective("client.demo.obj", "client.demo.value", value=True)

    def test_window_kind_needs_positive_window_and_known_reduce(self):
        with pytest.raises(ObservabilityError, match="window_s > 0"):
            objective("client.demo.obj", "client.demo.series", kind="window")
        with pytest.raises(ObservabilityError, match="window_s > 0"):
            objective(
                "client.demo.obj", "client.demo.series", kind="window", window_s=0
            )
        with pytest.raises(ObservabilityError, match="unknown reduce"):
            objective(
                "client.demo.obj",
                "client.demo.series",
                kind="window",
                window_s=5.0,
                reduce="p99",
            )

    @pytest.mark.parametrize("bad_budget", [None, -0.1, 1.5, True])
    def test_burn_rate_needs_budget_in_unit_interval(self, bad_budget):
        with pytest.raises(ObservabilityError, match="budget in \\[0, 1\\]"):
            objective(
                "client.demo.obj",
                "client.demo.series",
                kind="burn_rate",
                budget=bad_budget,
            )


class TestSpecParsing:
    def test_round_trip_through_file(self, tmp_path):
        path = tmp_path / "demo.json"
        path.write_text(json.dumps(spec_data()))
        spec = load_spec(path)
        assert spec.experiment == "fig7"
        assert spec.objectives[0].id == "client.demo.threshold"
        assert spec.path == str(path)

    def test_missing_file_and_malformed_json(self, tmp_path):
        with pytest.raises(ObservabilityError, match="cannot read"):
            load_spec(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ObservabilityError, match="malformed JSON"):
            load_spec(bad)

    def test_structural_errors(self):
        with pytest.raises(ObservabilityError, match="must be an object"):
            parse_spec(["not", "a", "dict"])
        with pytest.raises(ObservabilityError, match="schema"):
            parse_spec(spec_data(schema=99))
        with pytest.raises(ObservabilityError, match="missing experiment"):
            parse_spec(spec_data(experiment=""))
        with pytest.raises(ObservabilityError, match="non-empty list"):
            parse_spec(spec_data(objectives=[]))

    def test_unknown_keys_and_duplicate_ids(self):
        entry = dict(spec_data()["objectives"][0])
        entry["threshold"] = 2.0  # typo for "value"
        with pytest.raises(ObservabilityError, match=r"unknown keys \['threshold'\]"):
            parse_spec(spec_data(objectives=[entry]))
        duplicate = spec_data()["objectives"][0]
        with pytest.raises(ObservabilityError, match="duplicate objective id"):
            parse_spec(spec_data(objectives=[duplicate, dict(duplicate)]))

    def test_objective_errors_carry_spec_path_and_index(self):
        entry = dict(spec_data()["objectives"][0], op="!=")
        with pytest.raises(
            ObservabilityError, match=r"my\.json: objectives\[0\]"
        ):
            parse_spec(spec_data(objectives=[entry]), path="my.json")

    def test_every_repo_default_spec_parses(self):
        paths = sorted((REPO_ROOT / "slos").glob("*.json"))
        assert paths, "repo slos/ directory should ship default specs"
        for path in paths:
            spec = load_spec(path)
            assert spec.objectives

    def test_load_default_specs_skips_absent_files_but_loads_repo_defaults(
        self, tmp_path
    ):
        # Explicit empty root: registered defaults exist but files don't.
        assert load_default_specs(["fig7", "fig12"], root=tmp_path) == []
        # Unregistered experiment: silently nothing.
        assert load_default_specs(["fig1"], root=REPO_ROOT) == []
        specs = load_default_specs(["fig7"], root=REPO_ROOT)
        assert [spec.experiment for spec in specs] == ["fig7"]


class TestThresholdEvaluator:
    def obj(self, **kw):
        defaults = dict(op=">=", value=1.0)
        defaults.update(kw)
        return objective("client.demo.obj", "client.demo.value", **defaults)

    def test_scalar_pass_and_margin(self):
        row = evaluate_objective(self.obj(), {"client.demo.value": 1.25})
        assert row["status"] == "ok"
        assert row["actual"] == 1.25
        assert row["margin"] == 0.25

    def test_scalar_violation_negative_margin(self):
        row = evaluate_objective(self.obj(), {"client.demo.value": 0.75})
        assert row["status"] == "violated"
        assert row["margin"] == -0.25

    def test_le_direction_flips_margin_sign(self):
        row = evaluate_objective(
            self.obj(op="<=", value=0.5), {"client.demo.value": 0.3}
        )
        assert row["status"] == "ok" and row["margin"] == 0.2

    def test_threshold_over_series_reduces_first(self):
        obj = objective(
            "client.demo.obj", "client.demo.series", reduce="min", value=1.0
        )
        domain = {"client.demo.series": {"window_s": 1.0, "samples": [2.0, 0.5, 3.0]}}
        row = evaluate_objective(obj, domain)
        assert row["status"] == "violated" and row["actual"] == 0.5

    def test_missing_metric_and_wrong_shape_skip(self):
        row = evaluate_objective(self.obj(), {})
        assert row["status"] == "skipped" and "not found" in row["reason"]
        row = evaluate_objective(self.obj(), {"client.demo.value": "fast"})
        assert row["status"] == "skipped"
        assert row["actual"] is None and row["margin"] is None


class TestWindowEvaluator:
    def obj(self, **kw):
        defaults = dict(kind="window", op=">=", value=1.0, window_s=2.0)
        defaults.update(kw)
        return objective("client.demo.obj", "client.demo.series", **defaults)

    def test_worst_sliding_window_catches_transient_dip(self):
        # Mean is 1.5 (passing) but the 2-sample window [0.4, 0.6] is not.
        domain = {
            "client.demo.series": {
                "window_s": 1.0,
                "samples": [2.5, 2.5, 0.4, 0.6, 2.5, 2.5],
            }
        }
        row = evaluate_objective(self.obj(), domain)
        assert row["status"] == "violated"
        assert row["actual"] == 0.5
        assert row["worst_window"] == {"start_s": 2.0, "end_s": 4.0, "value": 0.5}

    def test_le_direction_worst_is_the_maximum_window(self):
        domain = {
            "client.demo.series": {"window_s": 1.0, "samples": [0.1, 0.9, 0.2]}
        }
        row = evaluate_objective(self.obj(op="<=", window_s=1.0), domain)
        assert row["worst_window"]["value"] == 0.9
        assert row["status"] == "ok"  # 0.9 <= 1.0

    def test_timeseries_pairs_use_tumbling_buckets(self):
        domain = {
            "client.demo.series": [[0.0, 2.0], [1.0, 2.0], [2.5, 0.5], [3.0, 0.7]]
        }
        row = evaluate_objective(self.obj(), domain)
        # Bucket [2.0, 4.0) holds 0.5 and 0.7 -> mean 0.6, violating.
        assert row["status"] == "violated"
        assert row["worst_window"] == {"start_s": 2.0, "end_s": 4.0, "value": 0.6}

    def test_scalar_metric_skips_window_kind(self):
        row = evaluate_objective(self.obj(), {"client.demo.series": 1.5})
        assert row["status"] == "skipped" and "not a series" in row["reason"]


class TestBurnRateEvaluator:
    def obj(self, budget=0.25):
        return objective(
            "client.demo.obj",
            "client.demo.series",
            kind="burn_rate",
            op=">=",
            value=1.0,
            budget=budget,
        )

    def test_fraction_within_budget_passes(self):
        domain = {
            "client.demo.series": {
                "window_s": 1.0,
                "samples": [2.0, 0.5, 2.0, 2.0],  # 1/4 violating == budget
            }
        }
        row = evaluate_objective(self.obj(), domain)
        assert row["status"] == "ok"
        assert row["actual"] == 0.25 and row["margin"] == 0.0
        assert row["worst_window"] == {"start_s": 1.0, "end_s": 2.0, "samples": 1}

    def test_fraction_over_budget_violates_with_streak(self):
        domain = {
            "client.demo.series": {
                "window_s": 1.0,
                "samples": [0.5, 0.5, 2.0, 0.5],  # 3/4 violating
            }
        }
        row = evaluate_objective(self.obj(), domain)
        assert row["status"] == "violated"
        assert row["actual"] == 0.75 and row["margin"] == -0.5
        # Longest streak is samples 0-1.
        assert row["worst_window"] == {"start_s": 0.0, "end_s": 2.0, "samples": 2}

    def test_no_violations_has_no_streak(self):
        domain = {"client.demo.series": {"window_s": 1.0, "samples": [2.0, 2.0]}}
        row = evaluate_objective(self.obj(), domain)
        assert row["status"] == "ok" and row["worst_window"] is None


class TestRegistryResolution:
    RECORDS = [
        {"type": "counter", "name": "engine.events.dispatched", "value": 42.0},
        {
            "type": "gauge",
            "name": "harvester.voltage_v",
            "labels": {"device": "cam"},
            "value": 2.4,
        },
        {
            "type": "histogram",
            "name": "net.latency_s",
            "mean": 0.2,
            "min": 0.1,
            "max": 0.9,
            "count": 10,
            "quantiles": {"0.50": 0.15, "0.90": 0.5, "0.99": 0.8},
        },
        {
            "type": "timeseries",
            "name": "sensor.reads",
            "samples": [[0.0, 0.0], [10.0, 40.0]],
        },
    ]

    def test_counter_gauge_and_labels(self):
        assert (
            resolve_metric("registry:engine.events.dispatched", {}, self.RECORDS)
            == 42.0
        )
        assert (
            resolve_metric(
                "registry:harvester.voltage_v{device=cam}", {}, self.RECORDS
            )
            == 2.4
        )
        assert (
            resolve_metric(
                "registry:harvester.voltage_v{device=tag}", {}, self.RECORDS
            )
            is None
        )

    def test_histogram_reductions(self):
        assert resolve_metric("registry:net.latency_s", {}, self.RECORDS) == 0.2
        assert resolve_metric("registry:net.latency_s#p99", {}, self.RECORDS) == 0.8
        assert resolve_metric("registry:net.latency_s#max", {}, self.RECORDS) == 0.9

    def test_timeseries_rate_and_series_form(self):
        assert resolve_metric("registry:sensor.reads#rate", {}, self.RECORDS) == 4.0
        assert resolve_metric("registry:sensor.reads#last", {}, self.RECORDS) == 40.0
        samples = resolve_metric("registry:sensor.reads", {}, self.RECORDS)
        assert samples == [[0.0, 0.0], [10.0, 40.0]]

    def test_registry_ref_without_records_skips(self):
        obj = objective("client.demo.obj", "registry:engine.events.dispatched")
        row = evaluate_objective(obj, {}, registry_records=None)
        assert row["status"] == "skipped"


class TestRunLevelEvaluation:
    def specs(self):
        return [
            parse_spec(spec_data(), path="slos/fig7.json"),
            parse_spec(
                spec_data(
                    experiment="fig12",
                    objectives=[
                        {
                            "id": "camera.demo.range",
                            "metric": "camera.demo.range_feet",
                            "value": 10.0,
                        }
                    ],
                ),
                path="slos/fig12.json",
            ),
        ]

    def manifest(self):
        return {
            "experiments": [
                {
                    "id": "fig7",
                    "error": None,
                    "domain": {"client.demo.value": 1.5},
                },
                {"id": "fig12", "error": "boom", "domain": {}},
            ]
        }

    def test_absent_and_failed_experiments_skip(self):
        rows = evaluate_specs(
            self.specs(), {"fig7": {"client.demo.value": 1.5}}, errors={}
        )
        by_exp = {row["experiment"]: row for row in rows}
        assert by_exp["fig7"]["status"] == "ok"
        assert by_exp["fig12"]["reason"] == "experiment not in run"
        rows = evaluate_specs(
            self.specs(),
            {"fig7": {}, "fig12": {}},
            errors={"fig12": "ValueError: boom"},
        )
        by_exp = {row["experiment"]: row for row in rows}
        assert by_exp["fig12"]["reason"] == "experiment failed"

    def test_section_counts_and_exit_codes(self):
        section = evaluate_manifest(self.manifest(), self.specs())
        assert section["schema"] == SLO_SCHEMA_VERSION
        assert section["counts"] == {"ok": 1, "violated": 0, "skipped": 1}
        assert section["ok"] is True
        assert section["specs"] == ["slos/fig12.json", "slos/fig7.json"]
        assert exit_code(section) == 0
        assert exit_code(section, strict=True) == 1  # skips gate under strict
        violating = evaluate_manifest(
            {
                "experiments": [
                    {"id": "fig7", "error": None, "domain": {"client.demo.value": 0.1}}
                ]
            },
            self.specs()[:1],
        )
        assert violating["ok"] is False
        assert exit_code(violating) == 1

    def test_rows_sorted_by_experiment_then_id(self):
        section = evaluate_manifest(self.manifest(), self.specs())
        keys = [(row["experiment"], row["id"]) for row in section["objectives"]]
        assert keys == sorted(keys)

    def test_equal_inputs_give_byte_identical_sections(self):
        a = evaluate_manifest(self.manifest(), self.specs())
        b = evaluate_manifest(self.manifest(), self.specs())
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_render_section_scorecard(self):
        section = evaluate_manifest(self.manifest(), self.specs())
        text = render_section(section)
        assert "== slo == ok=1 violated=0 skipped=1" in text
        assert "PASS" in text and "SKIP" in text and "experiment failed" in text

    def test_violation_demo_spec_fails_a_seedlike_domain(self):
        spec = load_spec(REPO_ROOT / "slos" / "violation_demo.json")
        section = evaluate_manifest(
            {
                "experiments": [
                    {
                        "id": "fig7",
                        "error": None,
                        "domain": {"channel.occupancy.cumulative.mean": 1.246060859},
                    }
                ]
            },
            [spec],
        )
        assert section["counts"]["violated"] == 1
        assert exit_code(section) == 1
