"""Multi-band harvester tests (§8(e) future-work implementation)."""

import pytest

from repro.errors import CircuitError, ConfigurationError
from repro.harvester.multiband import (
    BAND_900_START_HZ,
    BAND_900_STOP_HZ,
    BandInput,
    MultiBandHarvester,
    band_900_harvester,
    band_900_matching,
)


class TestBand900Matching:
    def test_meets_minus_10db_in_band(self):
        network = band_900_matching()
        worst = network.worst_return_loss_db(
            band=(BAND_900_START_HZ, BAND_900_STOP_HZ)
        )
        assert worst < -10.0

    def test_badly_matched_at_2_4ghz(self):
        """The 900 MHz branch must NOT accept 2.4 GHz — that is the
        diplexer+branch separation working."""
        network = band_900_matching()
        assert network.return_loss_db(2.437e9) > -6.0

    def test_branch_harvester_operates(self):
        harvester = band_900_harvester()
        assert harvester.is_operational(-10.0, 915e6)

    def test_branch_sensitivity_reasonable(self):
        sensitivity = band_900_harvester().sensitivity_dbm(915e6)
        assert -22.0 < sensitivity < -12.0


class TestMultiBand:
    @pytest.fixture
    def harvester(self):
        return MultiBandHarvester()

    def test_routing(self, harvester):
        assert harvester.branch_for(2.437e9) == "2.4GHz"
        assert harvester.branch_for(915e6) == "900MHz"
        assert harvester.branch_for(5.8e9) is None

    def test_two_band_harvest_exceeds_single(self, harvester):
        both = harvester.dc_output_power_w(
            [BandInput(2.437e9, -10.0), BandInput(915e6, -10.0)]
        )
        wifi_only = harvester.dc_output_power_w([BandInput(2.437e9, -10.0)])
        uhf_only = harvester.dc_output_power_w([BandInput(915e6, -10.0)])
        assert both == pytest.approx(wifi_only + uhf_only, rel=1e-9)
        assert both > wifi_only > 0
        assert uhf_only > 0

    def test_out_of_band_contributes_nothing(self, harvester):
        with_junk = harvester.dc_output_power_w(
            [BandInput(2.437e9, -10.0), BandInput(5.8e9, 0.0)]
        )
        without = harvester.dc_output_power_w([BandInput(2.437e9, -10.0)])
        assert with_junk == pytest.approx(without)

    def test_same_band_inputs_accumulate(self, harvester):
        one = harvester.dc_output_power_w([BandInput(2.412e9, -13.0)])
        three = harvester.dc_output_power_w(
            [
                BandInput(2.412e9, -13.0),
                BandInput(2.437e9, -13.0),
                BandInput(2.462e9, -13.0),
            ]
        )
        assert three > one  # the paper's cumulative-occupancy effect

    def test_diplexer_loss_degrades_sensitivity(self, harvester):
        from repro.harvester.harvester import battery_free_harvester

        bare = battery_free_harvester().sensitivity_dbm(2.437e9)
        behind_diplexer = harvester.sensitivity_dbm(2.437e9)
        assert behind_diplexer > bare  # needs a little more incident power

    def test_sensitivity_outside_bands_rejected(self, harvester):
        with pytest.raises(CircuitError):
            harvester.sensitivity_dbm(5.8e9)

    def test_empty_branches_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiBandHarvester(branches={})

    def test_no_input_no_output(self, harvester):
        assert harvester.dc_output_power_w([]) == 0.0
