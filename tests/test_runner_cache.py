"""Runner cache layer: key construction, store semantics, fingerprinting."""

import pickle

import pytest

from repro.runner.cache import (
    ResultCache,
    cache_key,
    canonical_config,
    code_fingerprint,
)

FP = "f" * 64  # a stand-in code fingerprint


def _key(**overrides):
    params = dict(
        experiment_id="fig5",
        part="threshold=1",
        target="repro.experiments.fig05_delay_sweep:run_fig05",
        kwargs={"thresholds": (1,), "duration_s": 2.0, "seed": 0},
        seed=0,
        fingerprint=FP,
    )
    params.update(overrides)
    return cache_key(**params)


class TestCacheKey:
    def test_same_inputs_same_key(self):
        assert _key() == _key()

    def test_key_is_hex_sha256(self):
        key = _key()
        assert len(key) == 64
        int(key, 16)  # parses as hex

    def test_changed_seed_changes_key(self):
        assert _key(seed=1, kwargs={"thresholds": (1,), "seed": 1}) != _key()

    def test_changed_config_changes_key(self):
        assert _key(kwargs={"thresholds": (5,), "duration_s": 2.0, "seed": 0}) != _key()

    def test_changed_code_fingerprint_changes_key(self):
        assert _key(fingerprint="0" * 64) != _key()

    def test_changed_part_changes_key(self):
        assert _key(part="threshold=5") != _key()

    def test_changed_target_changes_key(self):
        assert _key(target="repro.experiments.fig14_homes:run_home") != _key()

    def test_kwargs_order_is_irrelevant(self):
        forward = _key(kwargs={"a": 1, "b": 2})
        backward = _key(kwargs={"b": 2, "a": 1})
        assert forward == backward


class TestCanonicalConfig:
    def test_tuples_and_lists_coincide(self):
        assert canonical_config((1, 2)) == canonical_config([1, 2])

    def test_dicts_sort_keys(self):
        assert canonical_config({"b": 1, "a": 2}) == {"a": 2, "b": 1}
        assert list(canonical_config({"b": 1, "a": 2})) == ["a", "b"]

    def test_enums_fold_to_class_dot_name(self):
        from repro.core.config import Scheme

        assert canonical_config(Scheme.POWIFI) == "Scheme.POWIFI"

    def test_dataclasses_fold_fields(self):
        from repro.workloads.homes import HOME_DEPLOYMENTS

        folded = canonical_config(HOME_DEPLOYMENTS[0])
        assert folded["__dataclass__"] == "HomeProfile"
        assert folded == canonical_config(HOME_DEPLOYMENTS[0])
        assert folded != canonical_config(HOME_DEPLOYMENTS[1])

    def test_scalars_pass_through(self):
        for value in (None, True, 3, 2.5, "x"):
            assert canonical_config(value) == value


class TestCodeFingerprint:
    def test_stable_within_a_process(self):
        assert code_fingerprint() == code_fingerprint()

    def test_tracks_source_content(self, tmp_path):
        package = tmp_path / "pkg"
        package.mkdir()
        (package / "a.py").write_text("A = 1\n")
        before = code_fingerprint(package)
        (package / "a.py").write_text("A = 2\n")
        after = code_fingerprint(package)
        assert before != after

    def test_tracks_file_set(self, tmp_path):
        package = tmp_path / "pkg"
        package.mkdir()
        (package / "a.py").write_text("A = 1\n")
        before = code_fingerprint(package)
        (package / "b.py").write_text("B = 1\n")
        assert code_fingerprint(package) != before

    def test_ignores_pycache(self, tmp_path):
        package = tmp_path / "pkg"
        (package / "__pycache__").mkdir(parents=True)
        (package / "a.py").write_text("A = 1\n")
        before = code_fingerprint(package)
        (package / "__pycache__" / "junk.py").write_text("x = 1\n")
        assert code_fingerprint(package) == before


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        key = _key()
        cache.put(key, {"answer": 42}, meta={"experiment": "fig5"})
        hit, value = cache.get(key)
        assert hit and value == {"answer": 42}

    def test_missing_key_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        hit, value = cache.get("0" * 64)
        assert not hit and value is None

    def test_corrupt_entry_is_discarded_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        key = _key()
        cache.put(key, [1, 2, 3])
        cache._object_path(key).write_bytes(b"not a pickle")
        hit, value = cache.get(key)
        assert not hit and value is None
        assert not cache.contains(key)  # discarded, not left to rot

    def test_meta_sidecar_written(self, tmp_path):
        import json

        cache = ResultCache(str(tmp_path / "cache"))
        key = _key()
        cache.put(key, "payload", meta={"experiment": "fig5", "part": "all"})
        meta = json.loads(cache._meta_path(key).read_text())
        assert meta["experiment"] == "fig5"
        assert meta["size_bytes"] == len(
            pickle.dumps("payload", protocol=pickle.HIGHEST_PROTOCOL)
        )

    def test_clear_and_len(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        for index in range(3):
            cache.put(_key(part=f"p{index}"), index)
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_put_overwrites(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        key = _key()
        cache.put(key, "old")
        cache.put(key, "new")
        assert cache.get(key) == (True, "new")
