"""Workload tests: background traffic, web pages, home profiles."""

import pytest

from repro.errors import ConfigurationError
from repro.mac80211.medium import Medium
from repro.mac80211.station import Station
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workloads.homes import (
    HOME_CHANNELS,
    HOME_DEPLOYMENTS,
    HomeDeployment,
    HomeProfile,
    diurnal_multiplier,
    peak_single_channel_metric,
)
from repro.workloads.office import OfficeBackground
from repro.workloads.traffic import BurstyFrameSource, PoissonFrameSource
from repro.workloads.web import TOP_10_US_SITES, all_pages, page_for_site


def one_channel(seed=0):
    sim = Simulator()
    streams = RandomStreams(seed)
    medium = Medium(sim, channel=1)
    station = Station(sim, name="bg", streams=streams)
    medium.attach(station)
    return sim, streams, medium, station


class TestPoissonSource:
    def test_hits_target_occupancy(self):
        sim, streams, medium, station = one_channel()
        source = PoissonFrameSource(
            sim, station, streams.stream("src"), target_occupancy=0.3
        )
        source.start()
        sim.run(until=5.0)
        assert medium.occupancy() == pytest.approx(0.3, abs=0.08)

    def test_zero_target_generates_nothing(self):
        sim, streams, medium, station = one_channel()
        source = PoissonFrameSource(
            sim, station, streams.stream("src"), target_occupancy=0.0
        )
        source.start()
        sim.run(until=1.0)
        assert source.frames_generated == 0

    def test_retuning_changes_load(self):
        sim, streams, medium, station = one_channel()
        source = PoissonFrameSource(
            sim, station, streams.stream("src"), target_occupancy=0.1
        )
        source.start()
        sim.run(until=2.0)
        low_busy = medium.total_busy_time
        source.set_target_occupancy(0.5)
        sim.run(until=4.0)
        high_busy = medium.total_busy_time - low_busy
        assert high_busy > low_busy * 2

    def test_stop(self):
        sim, streams, medium, station = one_channel()
        source = PoissonFrameSource(
            sim, station, streams.stream("src"), target_occupancy=0.2
        )
        source.start()
        sim.run(until=1.0)
        source.stop()
        generated = source.frames_generated
        sim.run(until=2.0)
        assert source.frames_generated == generated

    def test_target_validation(self):
        sim, streams, medium, station = one_channel()
        with pytest.raises(ConfigurationError):
            PoissonFrameSource(sim, station, streams.stream("s"), target_occupancy=1.0)


class TestBurstySource:
    def test_hits_target_occupancy(self):
        sim, streams, medium, station = one_channel(seed=5)
        source = BurstyFrameSource(
            sim, station, streams.stream("src"), target_occupancy=0.25
        )
        source.start()
        sim.run(until=10.0)
        assert medium.occupancy() == pytest.approx(0.25, abs=0.08)

    def test_burst_length_validation(self):
        sim, streams, medium, station = one_channel()
        with pytest.raises(ConfigurationError):
            BurstyFrameSource(
                sim, station, streams.stream("s"), mean_burst_frames=0.5
            )


class TestOfficeBackground:
    def test_one_station_per_channel(self):
        sim = Simulator()
        streams = RandomStreams(0)
        media = {ch: Medium(sim, channel=ch) for ch in (1, 6, 11)}
        office = OfficeBackground(sim, media, streams)
        assert set(office.stations) == {1, 6, 11}

    def test_unknown_channel_rejected(self):
        sim = Simulator()
        media = {1: Medium(sim, channel=1)}
        with pytest.raises(ConfigurationError):
            OfficeBackground(sim, media, RandomStreams(0), {6: 0.2})

    def test_generates_ambient_load(self):
        sim = Simulator()
        streams = RandomStreams(0)
        media = {1: Medium(sim, channel=1)}
        office = OfficeBackground(sim, media, streams, {1: 0.25})
        office.start()
        sim.run(until=5.0)
        assert 0.1 < media[1].occupancy() < 0.4


class TestWebPages:
    def test_ten_sites(self):
        assert len(TOP_10_US_SITES) == 10
        assert len(all_pages()) == 10

    def test_known_site_shapes(self):
        google = page_for_site("google.com")
        yahoo = page_for_site("yahoo.com")
        # yahoo was by far the heaviest 2015 front page; google the lightest.
        assert yahoo.total_bytes > 2 * google.total_bytes
        assert len(yahoo.objects) > len(google.objects)

    def test_scale_shrinks_bytes(self):
        full = page_for_site("reddit.com", scale=1.0)
        small = page_for_site("reddit.com", scale=0.25)
        assert small.total_bytes < full.total_bytes * 0.3

    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigurationError):
            page_for_site("example.org")

    def test_scale_validation(self):
        with pytest.raises(ConfigurationError):
            page_for_site("google.com", scale=0.0)


class TestHomeProfiles:
    def test_six_homes(self):
        assert len(HOME_DEPLOYMENTS) == 6

    def test_table1_values(self):
        """The encoded profiles must be exactly Table 1."""
        expected = [
            (1, 2, 6, 17),
            (2, 1, 1, 4),
            (3, 3, 6, 10),
            (4, 2, 4, 15),
            (5, 1, 2, 24),
            (6, 3, 6, 16),
        ]
        actual = [
            (p.index, p.users, p.devices, p.neighboring_aps)
            for p in HOME_DEPLOYMENTS
        ]
        assert actual == expected

    def test_profile_validation(self):
        with pytest.raises(ConfigurationError):
            HomeProfile(7, users=-1, devices=0, neighboring_aps=0, start_hour=0, weekend=False)
        with pytest.raises(ConfigurationError):
            HomeProfile(7, users=1, devices=0, neighboring_aps=0, start_hour=25, weekend=False)


class TestDiurnal:
    def test_evening_peak_beats_night_trough(self):
        assert diurnal_multiplier(21.0) > 2 * diurnal_multiplier(4.0)

    def test_weekend_flattens_morning(self):
        assert diurnal_multiplier(9.0, weekend=True) < diurnal_multiplier(
            9.0, weekend=False
        )

    def test_periodic(self):
        assert diurnal_multiplier(1.0) == pytest.approx(diurnal_multiplier(25.0))


class TestHomeDeployment:
    def test_peak_metric_from_airtime_constants(self):
        assert 0.55 < peak_single_channel_metric() < 0.70

    def test_24h_log_has_1440_windows(self):
        deployment = HomeDeployment(HOME_DEPLOYMENTS[0])
        samples = deployment.run()
        assert len(samples) == 1440

    def test_occupancy_bounded(self):
        deployment = HomeDeployment(HOME_DEPLOYMENTS[0])
        for sample in deployment.run():
            for ch in HOME_CHANNELS:
                assert 0.0 <= sample.router_occupancy[ch] <= 1.0
            assert 0.0 <= sample.cumulative <= 3.0

    def test_busy_neighborhood_lowers_occupancy(self):
        """§6: carrier sense scales the router back under neighbour load."""
        quiet = HomeDeployment(HOME_DEPLOYMENTS[1])  # 4 APs
        busy = HomeDeployment(HOME_DEPLOYMENTS[4])  # 24 APs
        quiet.run()
        busy.run()
        assert (
            busy.cumulative_occupancy_series().mean
            < quiet.cumulative_occupancy_series().mean
        )

    def test_reproducible_with_same_seed(self):
        a = HomeDeployment(HOME_DEPLOYMENTS[2], RandomStreams(9))
        b = HomeDeployment(HOME_DEPLOYMENTS[2], RandomStreams(9))
        assert [s.cumulative for s in a.run()] == [s.cumulative for s in b.run()]

    def test_series_requires_run(self):
        deployment = HomeDeployment(HOME_DEPLOYMENTS[0])
        with pytest.raises(ConfigurationError):
            deployment.occupancy_series()

    def test_client_load_only_on_channel_one(self):
        deployment = HomeDeployment(HOME_DEPLOYMENTS[0])
        samples = deployment.run()
        sample = max(samples, key=lambda s: s.client_load)
        assert sample.router_occupancy[1] >= sample.power_occupancy[1]
        assert sample.router_occupancy[6] == pytest.approx(sample.power_occupancy[6])
