"""Live telemetry: publisher drop semantics, event log, tailing, watch board.

Pins the streaming contract: publishing never fails work (drops are
counted, not raised), the event log replays into the same state
incrementally or in one batch, the tailer only consumes complete lines,
and a ``--live`` run changes nothing about results.
"""

import json

import pytest

from repro.obs.live import (
    LIVE_SCHEMA_VERSION,
    LivePublisher,
    LiveSink,
    WatchState,
    expected_walls,
    render_board,
    replay,
    tail_jsonl,
)


class _FullQueue:
    def put_nowait(self, record):
        raise RuntimeError("queue unavailable")


class _ListQueue:
    def __init__(self):
        self.items = []

    def put_nowait(self, record):
        self.items.append(record)


class TestPublisher:
    def test_failures_count_drops_never_raise(self):
        publisher = LivePublisher(_FullQueue())
        assert publisher.publish({"type": "x"}) is False
        assert publisher.part_running("fig5", "all", 1) is False
        assert publisher.dropped == 2

    def test_happy_path_enqueues(self):
        queue = _ListQueue()
        publisher = LivePublisher(queue)
        assert publisher.part_running("fig5", "t=1", 2) is True
        assert publisher.dropped == 0
        assert queue.items == [
            {"type": "part.running", "experiment": "fig5", "part": "t=1", "attempt": 2}
        ]


class TestLiveSink:
    def test_events_are_sequenced_and_schema_stamped(self, tmp_path):
        path = tmp_path / "run_live.jsonl"
        sink = LiveSink(path)
        sink.emit("run.start", jobs=2)
        sink.part_state("fig5", "all", "queued")
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["seq"] for r in records] == [1, 2]
        assert all(r["schema"] == LIVE_SCHEMA_VERSION for r in records)
        assert records[1]["state"] == "queued"

    def test_sink_truncates_previous_stream(self, tmp_path):
        path = tmp_path / "run_live.jsonl"
        path.write_text('{"stale": true}\n')
        LiveSink(path).emit("run.start")
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == 1 and "stale" not in records[0]

    def test_queued_parts_carry_expected_wall(self, tmp_path):
        sink = LiveSink(tmp_path / "l.jsonl", expected_walls={"fig5": 2.5})
        record = sink.part_state("fig5", "all", "queued")
        assert record["expected_wall_s"] == 2.5
        assert "expected_wall_s" not in sink.part_state("fig8", "all", "queued")

    def test_ingest_translates_worker_running(self, tmp_path):
        path = tmp_path / "l.jsonl"
        sink = LiveSink(path)
        sink.ingest(
            {"type": "part.running", "experiment": "fig5", "part": "t=1", "attempt": 1}
        )
        sink.ingest({"type": "unknown.noise"})  # ignored, not fatal
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == 1
        assert records[0]["state"] == "running" and records[0]["part"] == "t=1"


class TestTailJsonl:
    def test_incremental_and_partial_lines(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text('{"a": 1}\n{"b": 2}\n{"torn": ')
        records, offset = tail_jsonl(path, 0)
        assert records == [{"a": 1}, {"b": 2}]
        # The torn tail is not consumed; completing it yields it next tick.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('3}\n')
        more, offset = tail_jsonl(path, offset)
        assert more == [{"torn": 3}]
        assert tail_jsonl(path, offset) == ([], offset)

    def test_malformed_lines_skipped_missing_file_empty(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text('garbage\n{"ok": 1}\n')
        records, _ = tail_jsonl(path, 0)
        assert records == [{"ok": 1}]
        assert tail_jsonl(tmp_path / "absent.jsonl", 0) == ([], 0)


def recorded_stream():
    """A recorded --live event stream: 3-part run, one retry, one failure."""
    return [
        {"schema": 1, "seq": 1, "t_s": 0.0, "type": "run.start", "jobs": 2,
         "seed": 0, "tasks": 3, "ids": ["fig5", "fig8"], "experiments": 2},
        {"schema": 1, "seq": 2, "t_s": 0.0, "type": "part.state",
         "experiment": "fig5", "part": "t=1", "state": "queued",
         "expected_wall_s": 4.0},
        {"schema": 1, "seq": 3, "t_s": 0.0, "type": "part.state",
         "experiment": "fig5", "part": "t=5", "state": "queued",
         "expected_wall_s": 4.0},
        {"schema": 1, "seq": 4, "t_s": 0.0, "type": "part.state",
         "experiment": "fig8", "part": "all", "state": "queued"},
        {"schema": 1, "seq": 5, "t_s": 0.1, "type": "part.state",
         "experiment": "fig5", "part": "t=1", "state": "running", "attempt": 1},
        {"schema": 1, "seq": 6, "t_s": 0.2, "type": "fault",
         "point": "worker.crash", "task": "fig8:all"},
        {"schema": 1, "seq": 7, "t_s": 0.5, "type": "part.state",
         "experiment": "fig5", "part": "t=1", "state": "done", "wall_s": 0.4,
         "attempt": 1},
        {"schema": 1, "seq": 8, "t_s": 0.6, "type": "part.state",
         "experiment": "fig8", "part": "all", "state": "retrying", "attempt": 1,
         "kind": "pool_broken"},
        {"schema": 1, "seq": 9, "t_s": 0.9, "type": "part.state",
         "experiment": "fig8", "part": "all", "state": "failed", "attempt": 2,
         "kind": "error", "error": "ValueError: boom"},
    ]


class TestReplayAndBoard:
    def test_incremental_fold_equals_batch(self):
        events = recorded_stream()
        batch = replay(events)
        incremental = WatchState()
        for event in events:
            incremental = replay([event], incremental)
        assert incremental.parts == batch.parts
        assert incremental.order == batch.order
        assert incremental.run == batch.run
        assert incremental.counts() == batch.counts()

    def test_expected_wall_survives_transitions(self):
        state = replay(recorded_stream())
        assert state.parts[("fig5", "t=1")]["expected_wall_s"] == 4.0
        assert state.parts[("fig5", "t=1")]["state"] == "done"

    def test_eta_excludes_terminal_parts(self):
        state = replay(recorded_stream())
        # Unfinished with a baseline: only fig5:t=5 (4.0s over 2 parts of
        # fig5 = 2.0s expected), over 2 workers.
        assert state.eta_s() == pytest.approx(1.0)
        assert state.finished is False
        state = replay(
            [{"type": "run.done", "t_s": 1.0, "ok": 1, "failed": 1}], state
        )
        assert state.finished and state.eta_s() == 0.0

    def test_render_board_on_recorded_stream(self):
        state = replay(recorded_stream())
        board = render_board(state, spans_seen=12, metrics_seen=30)
        assert "== watch ==" in board and "jobs=2" in board
        assert "fig5:t=1" in board and "done" in board
        assert "fig8:all" in board and "failed" in board
        assert "ValueError: boom" in board
        assert "faults: 1 event(s)" in board
        assert "spans=12" in board and "metrics=30" in board
        done = replay([{"type": "run.done", "ok": 1, "failed": 1,
                        "cache_hits": 0, "wall_s": 1.0, "spans_dropped": 2,
                        "live_dropped": 3}], state)
        board = render_board(done)
        assert "run done" in board
        assert "dropped(spans=2, live=3)" in board


class TestTailTruncation:
    def test_shrunken_file_restarts_from_zero(self, tmp_path):
        """A new run truncating the stream mid-watch must not strand the
        tailer past EOF: the offset resets and the new stream is read."""
        path = tmp_path / "s.jsonl"
        path.write_text('{"a": 1}\n{"b": 2}\n')
        records, offset = tail_jsonl(path, 0)
        assert len(records) == 2
        path.write_text('{"c": 3}\n')  # truncate + restart (shorter file)
        records, offset = tail_jsonl(path, offset)
        assert records == [{"c": 3}]
        assert offset == len('{"c": 3}\n')
        assert tail_jsonl(path, offset) == ([], offset)

    def test_same_length_rewrite_not_detected_but_consistent(self, tmp_path):
        """Equal-length rewrites are indistinguishable from no-ops by size;
        the tailer just keeps its offset (documented best-effort)."""
        path = tmp_path / "s.jsonl"
        path.write_text('{"a": 1}\n')
        _, offset = tail_jsonl(path, 0)
        assert tail_jsonl(path, offset) == ([], offset)


class TestReplaySeqGuard:
    def test_duplicate_seqs_fold_once(self):
        events = recorded_stream()
        replayed_twice = replay(events + events)
        once = replay(events)
        assert replayed_twice.parts == once.parts
        assert replayed_twice.counts() == once.counts()
        assert replayed_twice.duplicates == len(events)
        assert replayed_twice.events == once.events

    def test_out_of_order_part_state_cannot_regress(self):
        events = recorded_stream()
        state = replay(events)
        assert state.parts[("fig5", "t=1")]["state"] == "done"
        # A stale 'running' record (lower seq than the applied 'done')
        # arriving late must not resurrect the part.
        stale = {"schema": 1, "seq": 5.5, "t_s": 0.1, "type": "part.state",
                 "experiment": "fig5", "part": "t=1", "state": "running"}
        stale["seq"] = 5  # duplicate of the already-folded running event
        state = replay([stale], state)
        assert state.parts[("fig5", "t=1")]["state"] == "done"
        assert state.duplicates == 1

    def test_unseen_lower_seq_is_stale_for_that_part(self):
        # Deliver done (seq 9) before running (seq 5): the late, lower-seq
        # running record is dropped by the per-part guard.
        done = {"seq": 9, "type": "part.state", "experiment": "x",
                "part": "p", "state": "done", "wall_s": 1.0}
        late = {"seq": 5, "type": "part.state", "experiment": "x",
                "part": "p", "state": "running"}
        state = replay([done, late])
        assert state.parts[("x", "p")]["state"] == "done"
        assert state.duplicates == 1

    def test_records_without_seq_fold_unconditionally(self):
        a = {"type": "part.state", "experiment": "x", "part": "p",
             "state": "running"}
        b = {"type": "part.state", "experiment": "x", "part": "p",
             "state": "done"}
        state = replay([a, b, a])  # hand-written stream, no seq numbers
        assert state.parts[("x", "p")]["state"] == "running"
        assert state.duplicates == 0


class TestSloFoldAndSnapshot:
    def slo_event(self, seq=20, ok=3, violated=1):
        return {"schema": 1, "seq": seq, "t_s": 1.0, "type": "experiment.slo",
                "experiment": "fig5", "ok": ok, "violated": violated,
                "skipped": 0, "objectives": [
                    {"id": "client.demo.obj", "status": "ok", "margin": 0.5}]}

    def test_experiment_slo_events_fold_into_state(self):
        state = replay(recorded_stream() + [self.slo_event()])
        assert state.slo["fig5"]["violated"] == 1
        # A later re-evaluation replaces the record.
        state = replay([self.slo_event(seq=21, violated=0)], state)
        assert state.slo["fig5"]["violated"] == 0

    def test_board_shows_slo_column_and_footer(self):
        state = replay(recorded_stream() + [self.slo_event(violated=0)])
        board = render_board(state)
        assert "slo:ok" in board          # per-part column
        assert "slo: fig5=ok" in board    # summary footer
        state = replay([self.slo_event(seq=21, violated=2)], state)
        board = render_board(state)
        assert "slo:VIOL(2)" in board and "fig5=VIOL(2)" in board

    def test_done_line_carries_slo_violated(self):
        state = replay(recorded_stream() + [
            {"seq": 30, "type": "run.done", "ok": 1, "failed": 1,
             "cache_hits": 0, "wall_s": 1.0, "slo_violated": 2}])
        assert "slo_violated=2" in render_board(state)

    def test_snapshot_is_json_safe_and_structured(self):
        from repro.obs.live import snapshot

        state = replay(recorded_stream() + [self.slo_event()])
        snap = snapshot(state, spans_seen=12, metrics_seen=30)
        json.dumps(snap)  # must be JSON-serialisable as-is
        assert snap["schema"] == LIVE_SCHEMA_VERSION
        assert snap["finished"] is False and snap["done"] is None
        assert snap["counts"]["done"] == 1 and snap["counts"]["failed"] == 1
        assert snap["slo"]["fig5"]["violated"] == 1
        assert {p["part"] for p in snap["parts"]} == {"t=1", "t=5", "all"}
        assert snap["spans_seen"] == 12 and snap["metrics_seen"] == 30
        done = replay([{"seq": 31, "type": "run.done", "ok": 2}], state)
        assert snapshot(done)["finished"] is True


class TestExpectedWalls:
    def test_latest_executed_wall_wins_cache_hits_skipped(self, tmp_path):
        path = tmp_path / "perf_history.jsonl"
        records = [
            {"experiments": {"fig5": {"wall_s": 4.0, "cache_hit": False}}},
            {"experiments": {"fig5": {"wall_s": 0.001, "cache_hit": True},
                             "fig8": {"wall_s": 2.0, "cache_hit": False}}},
        ]
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        walls = expected_walls(path)
        assert walls == {"fig5": 4.0, "fig8": 2.0}
        assert expected_walls(tmp_path / "absent.jsonl") == {}


class TestRunnerIntegration:
    def test_live_run_streams_lifecycle_and_changes_nothing(self, tmp_path):
        from repro.runner import run_all

        path = tmp_path / "run_live.jsonl"
        live = run_all(
            ids=["fig9", "table1"], jobs=1, use_cache=False,
            live_sink=LiveSink(path),
        )
        plain = run_all(ids=["fig9", "table1"], jobs=1, use_cache=False)
        for key in ("fig9", "table1"):
            assert (
                live.run_for(key).result_sha256 == plain.run_for(key).result_sha256
            ), f"{key}: --live changed the result"
        events = [json.loads(line) for line in path.read_text().splitlines()]
        types = [event["type"] for event in events]
        assert types[0] == "run.start" and types[-1] == "run.done"
        states = [e["state"] for e in events if e["type"] == "part.state"]
        assert states.count("queued") == 2
        assert states.count("running") == 2
        assert states.count("done") == 2
        assert events[-1]["spans_dropped"] == 0
        assert events[-1]["live_dropped"] == 0

    def test_pool_run_streams_worker_running_events(self, tmp_path):
        from repro.runner import run_all

        path = tmp_path / "run_live.jsonl"
        result = run_all(
            ids=["fig9", "table1"], jobs=2, use_cache=False,
            live_sink=LiveSink(path),
        )
        assert result.ok
        events = [json.loads(line) for line in path.read_text().splitlines()]
        states = [e["state"] for e in events if e["type"] == "part.state"]
        assert states.count("submitted") == 2
        assert states.count("running") == 2, states
        assert states.count("done") == 2

    def test_drop_counters_land_in_manifest_totals(self, tmp_path):
        from repro.runner import run_all
        from repro.runner.manifest import build_manifest

        result = run_all(ids=["table1"], jobs=1, use_cache=False)
        totals = build_manifest(result)["totals"]
        assert totals["spans_dropped"] == 0
        assert totals["live_dropped"] == 0


class TestWatchCli:
    def test_watch_once_renders_recorded_stream(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "run_live.jsonl"
        stream = recorded_stream() + [
            {"type": "run.done", "t_s": 1.0, "ok": 1, "failed": 1,
             "cache_hits": 0, "wall_s": 1.0},
        ]
        path.write_text("".join(json.dumps(e) + "\n" for e in stream))
        assert main(["watch", "--dir", str(tmp_path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "== watch ==" in out and "run done" in out

    def test_watch_follows_until_run_done(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "run_live.jsonl"
        stream = recorded_stream() + [{"type": "run.done", "ok": 2, "failed": 0}]
        path.write_text("".join(json.dumps(e) + "\n" for e in stream))
        assert main(["watch", "--file", str(path), "--interval", "0.05"]) == 0

    def test_watch_once_missing_stream_errors(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["watch", "--dir", str(tmp_path), "--once"]) == 2
        assert "no event stream" in capsys.readouterr().err
