"""DCF medium/station tests: contention, collisions, retries, fairness."""

import pytest

from repro.errors import MediumError
from repro.mac80211.airtime import frame_airtime_s
from repro.mac80211.frames import FrameJob, FrameKind
from repro.mac80211.medium import Medium
from repro.mac80211.station import Station
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def make_medium(seed=0, channel=1):
    sim = Simulator()
    streams = RandomStreams(seed)
    medium = Medium(sim, channel=channel)
    return sim, streams, medium


def attach_station(sim, streams, medium, name, **kwargs):
    station = Station(sim, name=name, streams=streams, **kwargs)
    medium.attach(station)
    return station


def broadcast_frame(size=1536, rate=54.0, on_complete=None):
    return FrameJob(
        mac_bytes=size,
        rate_mbps=rate,
        kind=FrameKind.POWER,
        broadcast=True,
        on_complete=on_complete,
    )


def unicast_frame(size=1536, rate=54.0, on_complete=None):
    return FrameJob(
        mac_bytes=size, rate_mbps=rate, broadcast=False, on_complete=on_complete
    )


class TestSingleStation:
    def test_single_broadcast_completes(self):
        sim, streams, medium = make_medium()
        station = attach_station(sim, streams, medium, "a")
        done = []
        station.enqueue(broadcast_frame(on_complete=lambda f, ok, t: done.append((ok, t))))
        sim.run()
        assert done == [(True, pytest.approx(done[0][1]))]
        assert station.frames_sent == 1

    def test_transmission_takes_difs_backoff_airtime(self):
        sim, streams, medium = make_medium()
        station = attach_station(sim, streams, medium, "a")
        done = []
        station.enqueue(broadcast_frame(on_complete=lambda f, ok, t: done.append(t)))
        sim.run()
        airtime = frame_airtime_s(1536, 54.0)
        # DIFS + backoff in [0, 15] slots + airtime.
        assert airtime + 28e-6 <= done[0] <= airtime + 28e-6 + 15 * 9e-6 + 1e-9

    def test_unicast_gets_ack_exchange(self):
        sim, streams, medium = make_medium()
        station = attach_station(sim, streams, medium, "a")
        b_done, u_done = [], []
        station.enqueue(broadcast_frame(on_complete=lambda f, ok, t: b_done.append(t)))
        sim.run()
        sim2, streams2, medium2 = make_medium()
        station2 = attach_station(sim2, streams2, medium2, "a")
        station2.enqueue(unicast_frame(on_complete=lambda f, ok, t: u_done.append(t)))
        sim2.run()
        # Same backoff stream => the unicast completion is later by SIFS+ACK.
        assert u_done[0] > b_done[0]

    def test_back_to_back_frames_serialise(self):
        sim, streams, medium = make_medium()
        station = attach_station(sim, streams, medium, "a")
        times = []
        for _ in range(5):
            station.enqueue(broadcast_frame(on_complete=lambda f, ok, t: times.append(t)))
        sim.run()
        assert len(times) == 5
        assert times == sorted(times)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(g >= frame_airtime_s(1536, 54.0) for g in gaps)

    def test_medium_occupancy_accounting(self):
        sim, streams, medium = make_medium()
        station = attach_station(sim, streams, medium, "a")
        for _ in range(10):
            station.enqueue(broadcast_frame())
        sim.run()
        assert medium.total_busy_time == pytest.approx(
            10 * frame_airtime_s(1536, 54.0)
        )


class TestContention:
    def test_two_saturated_stations_share_roughly_equally(self):
        sim, streams, medium = make_medium(seed=3)
        a = attach_station(sim, streams, medium, "a")
        b = attach_station(sim, streams, medium, "b")

        counts = {"a": 0, "b": 0}

        def refill(station, name):
            def done(frame, ok, t):
                counts[name] += 1
                station.enqueue(broadcast_frame(on_complete=done))

            return done

        a.enqueue(broadcast_frame(on_complete=refill(a, "a")))
        b.enqueue(broadcast_frame(on_complete=refill(b, "b")))
        sim.run(until=1.0)
        total = counts["a"] + counts["b"]
        assert total > 1000
        assert 0.4 < counts["a"] / total < 0.6

    def test_collisions_happen_and_are_counted(self):
        sim, streams, medium = make_medium(seed=1)
        stations = [attach_station(sim, streams, medium, f"s{i}") for i in range(4)]

        def refill(station):
            def done(frame, ok, t):
                station.enqueue(broadcast_frame(on_complete=done))

            return done

        for station in stations:
            station.enqueue(broadcast_frame(on_complete=refill(station)))
        sim.run(until=0.5)
        assert medium.collision_count > 0

    def test_collided_broadcast_reported_failed(self):
        sim, streams, medium = make_medium(seed=1)
        stations = [attach_station(sim, streams, medium, f"s{i}") for i in range(6)]
        outcomes = []

        def refill(station):
            def done(frame, ok, t):
                outcomes.append(ok)
                station.enqueue(broadcast_frame(on_complete=done))

            return done

        for station in stations:
            station.enqueue(broadcast_frame(on_complete=refill(station)))
        sim.run(until=0.5)
        assert False in outcomes and True in outcomes


class TestRetransmission:
    def test_lossy_unicast_retries_then_succeeds(self):
        sim, streams, medium = make_medium(seed=2)
        station = attach_station(
            sim, streams, medium, "a", unicast_loss_probability=0.5
        )
        outcomes = []
        for _ in range(50):
            station.enqueue(unicast_frame(on_complete=lambda f, ok, t: outcomes.append(ok)))
        sim.run()
        assert outcomes.count(True) > 40  # retries recover most frames

    def test_always_lossy_unicast_drops_after_retry_limit(self):
        sim, streams, medium = make_medium()
        station = attach_station(
            sim, streams, medium, "a", unicast_loss_probability=1.0
        )
        outcomes = []
        attempts = []
        frame = unicast_frame(
            on_complete=lambda f, ok, t: (outcomes.append(ok), attempts.append(f.attempts))
        )
        station.enqueue(frame)
        sim.run()
        assert outcomes == [False]
        assert attempts[0] == medium.phy.retry_limit + 1
        assert station.frames_dropped == 1

    def test_broadcast_never_retries(self):
        sim, streams, medium = make_medium()
        station = attach_station(
            sim, streams, medium, "a", unicast_loss_probability=1.0
        )
        done = []
        station.enqueue(broadcast_frame(on_complete=lambda f, ok, t: done.append(f.attempts)))
        sim.run()
        assert done == [1]


class TestObservers:
    def test_observer_sees_every_transmission(self):
        sim, streams, medium = make_medium()
        station = attach_station(sim, streams, medium, "a")
        records = []
        medium.add_observer(records.append)
        for _ in range(3):
            station.enqueue(broadcast_frame())
        sim.run()
        assert len(records) == 3
        assert all(r.channel == 1 for r in records)
        assert all(r.transmissions[0][0] == "a" for r in records)

    def test_record_durations_positive_and_ordered(self):
        sim, streams, medium = make_medium()
        station = attach_station(sim, streams, medium, "a")
        records = []
        medium.add_observer(records.append)
        for _ in range(3):
            station.enqueue(broadcast_frame())
        sim.run()
        for earlier, later in zip(records, records[1:]):
            assert later.start >= earlier.end


class TestWiring:
    def test_double_attach_rejected(self):
        sim, streams, medium = make_medium()
        station = attach_station(sim, streams, medium, "a")
        with pytest.raises(MediumError):
            medium.attach(station)

    def test_begin_transmission_without_frames_rejected(self):
        sim, streams, medium = make_medium()
        station = attach_station(sim, streams, medium, "a")
        with pytest.raises(MediumError):
            station.begin_transmission()

    def test_detached_station_rejects_enqueue_effects(self):
        sim = Simulator()
        station = Station(sim, "lonely", RandomStreams(0))
        # Enqueue works (queueing is independent) but backoff needs a medium.
        station.enqueue(broadcast_frame())
        with pytest.raises(MediumError):
            station.ensure_backoff()
