"""Every CLI flag the docs mention must exist (mirrors the CI docs job)."""

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tools"))

import check_cli_docs  # noqa: E402


def test_all_documented_flags_exist():
    files = check_cli_docs.default_files(ROOT)
    assert any(path.name == "running.md" for path in files)
    flags = check_cli_docs.known_flags(ROOT)
    problems = check_cli_docs.stale_flags(files, flags)
    assert not problems, "\n".join(problems)


def test_parser_extraction_sees_the_real_flag_set():
    flags = check_cli_docs.known_flags(ROOT)
    # Spot-check one flag per parser family so a refactor that moves a
    # parser out of the scanned modules cannot silently empty the set.
    for expected in ("--jobs", "--no-cache", "--flame", "--threshold",
                     "--flow", "--no-obs"):
        assert expected in flags, f"{expected} missing from extracted flags"
    assert len(flags) >= 30


def test_docs_reference_a_real_flag_population():
    files = check_cli_docs.default_files(ROOT)
    references = check_cli_docs.doc_flags(files)
    assert len(references) >= 20, "flag checker is scanning too little"


def test_checker_catches_a_stale_flag(tmp_path):
    page = tmp_path / "page.md"
    page.write_text("run with `--jobs 4` and the old `--no-such-flag`\n")
    flags = check_cli_docs.known_flags(ROOT)
    problems = check_cli_docs.stale_flags([page], flags)
    assert len(problems) == 1 and "--no-such-flag" in problems[0]


def test_external_tool_flags_are_allowlisted(tmp_path):
    page = tmp_path / "page.md"
    page.write_text("pytest benchmarks/ --benchmark-only\n")
    flags = check_cli_docs.known_flags(ROOT)
    assert check_cli_docs.stale_flags([page], flags) == []
