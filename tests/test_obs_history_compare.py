"""Perf-history recording and manifest regression diffing.

Pins the history record schema, the append/snapshot file behaviour, and the
``repro compare`` contract: wall regressions beyond the threshold fail, an
equal-seed equal-code hash mismatch is determinism drift and always fails,
and two records of the same run diff clean with exit code 0.
"""

import copy
import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.compare import compare_runs, load_run, render_compare
from repro.obs.history import (
    HISTORY_SCHEMA_VERSION,
    append_history,
    build_history_record,
    load_history,
    write_bench_snapshot,
)


def make_manifest(
    seed=0,
    fingerprint="cafe" * 10,
    shas=("a" * 64, "b" * 64),
    walls=(2.0, 4.0),
    cache_hits=(False, False),
    dispatched=(100, 200),
):
    """A minimal schema-2 manifest with two experiments."""
    experiments = []
    for index, exp_id in enumerate(("fig5", "fig14")):
        experiments.append(
            {
                "id": exp_id,
                "runtime_class": "fast",
                "seed": seed,
                "cache_hit": cache_hits[index],
                "duration_s": walls[index],
                "shape_ok": True,
                "shape_detail": "",
                "result_sha256": shas[index],
                "error": None,
                "parts": [
                    {
                        "part": "all",
                        "key": "0" * 64,
                        "cache_hit": cache_hits[index],
                        "duration_s": walls[index],
                        "engine": {
                            "simulators": 1,
                            "dispatched": dispatched[index],
                            "cancelled": 0,
                            "heap_high_watermark": 7 + index,
                        },
                        "metrics": {"records": 3, "counter_totals": {}},
                    }
                ],
            }
        )
    return {
        "schema": 2,
        "generated_unix_s": 1700000000.0,
        "jobs": 2,
        "seed": seed,
        "code_fingerprint": fingerprint,
        "cache": {"enabled": True, "dir": ".repro_cache", "experiments_hit": 0},
        "totals": {
            "experiments": 2,
            "ok": 2,
            "failed": 0,
            "cache_hits": 0,
            "wall_s": sum(walls),
            "events_dispatched": sum(dispatched),
        },
        "spans": {"schema": 1, "count": 0, "records": []},
        "experiments": experiments,
    }


class TestHistoryRecord:
    def test_record_shape_and_schema(self):
        record = build_history_record(make_manifest())
        assert record["schema"] == HISTORY_SCHEMA_VERSION
        assert record["kind"] == "perf_history"
        assert record["date"] == "2023-11-14"  # from generated_unix_s
        assert record["seed"] == 0
        assert set(record["experiments"]) == {"fig5", "fig14"}
        fig5 = record["experiments"]["fig5"]
        assert fig5["wall_s"] == 2.0
        assert fig5["events_dispatched"] == 100
        assert fig5["heap_high_watermark"] == 7
        assert record["totals"]["events_dispatched"] == 300
        assert record["totals"]["heap_high_watermark"] == 8

    def test_manifest_without_experiments_rejected(self):
        with pytest.raises(ObservabilityError, match="no experiments"):
            build_history_record({"schema": 2})

    def test_append_and_load_roundtrip(self, tmp_path):
        record = build_history_record(make_manifest())
        path = append_history(record, tmp_path)
        append_history(record, tmp_path)
        assert path.name == "perf_history.jsonl"
        loaded = load_history(path)
        assert len(loaded) == 2
        assert loaded[0] == loaded[1] == record

    def test_load_tolerates_blank_lines_rejects_garbage(self, tmp_path):
        path = tmp_path / "perf_history.jsonl"
        path.write_text('{"schema": 1}\n\n{"ok": true}\n')
        assert len(load_history(path)) == 2
        path.write_text("not json\n")
        with pytest.raises(ObservabilityError, match="malformed history record"):
            load_history(path)

    def test_bench_snapshot_named_by_date(self, tmp_path):
        record = build_history_record(make_manifest())
        path = write_bench_snapshot(record, tmp_path)
        assert path.name == "BENCH_2023-11-14.json"
        assert json.loads(path.read_text()) == record


class TestLoadRun:
    def test_loads_manifest_and_history_interchangeably(self, tmp_path):
        manifest = make_manifest()
        manifest_path = tmp_path / "run_manifest.json"
        manifest_path.write_text(json.dumps(manifest))
        record = build_history_record(manifest)
        history_path = append_history(record, tmp_path)
        bench_path = write_bench_snapshot(record, tmp_path)
        from_manifest = load_run(manifest_path)
        assert from_manifest == record
        assert load_run(history_path) == record
        assert load_run(bench_path) == record

    def test_jsonl_uses_latest_record(self, tmp_path):
        old = build_history_record(make_manifest(walls=(1.0, 1.0)))
        new = build_history_record(make_manifest(walls=(9.0, 9.0)))
        append_history(old, tmp_path)
        path = append_history(new, tmp_path)
        assert load_run(path)["experiments"]["fig5"]["wall_s"] == 9.0

    def test_unrecognised_file_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(ObservabilityError, match="neither"):
            load_run(path)


class TestCompareRuns:
    def _records(self, base_manifest, new_manifest):
        return (
            build_history_record(base_manifest),
            build_history_record(new_manifest),
        )

    def test_identical_runs_diff_clean(self):
        base, new = self._records(make_manifest(), make_manifest())
        report = compare_runs(base, new)
        assert report["regressed"] is False
        assert report["wall_regressions"] == []
        assert report["determinism_drift"] == []
        assert report["seeds_match"] and report["code_match"]
        assert "verdict: OK" in render_compare(report)

    def test_wall_regression_beyond_threshold_flags(self):
        base, new = self._records(
            make_manifest(walls=(2.0, 4.0)), make_manifest(walls=(2.0, 6.0))
        )
        report = compare_runs(base, new, wall_threshold=0.25)
        assert report["regressed"] is True
        assert report["wall_regressions"] == ["fig14"]
        assert "REGRESSION" in render_compare(report)

    def test_speedup_never_flags(self):
        base, new = self._records(
            make_manifest(walls=(4.0, 4.0)), make_manifest(walls=(1.0, 1.0))
        )
        assert compare_runs(base, new)["regressed"] is False

    def test_sub_floor_jitter_ignored(self):
        """A 10x slowdown on a 10 ms experiment is noise, not regression."""
        base, new = self._records(
            make_manifest(walls=(0.01, 0.02)), make_manifest(walls=(0.1, 0.2))
        )
        assert compare_runs(base, new, min_wall_s=0.5)["regressed"] is False

    def test_cache_hits_untimed(self):
        base, new = self._records(
            make_manifest(walls=(2.0, 4.0)),
            make_manifest(walls=(0.0, 40.0), cache_hits=(False, True)),
        )
        report = compare_runs(base, new)
        fig14 = next(row for row in report["wall"] if row["id"] == "fig14")
        assert fig14["timed"] is False and fig14["regressed"] is False

    def test_drift_at_equal_seed_and_code_fails(self):
        base, new = self._records(
            make_manifest(shas=("a" * 64, "b" * 64)),
            make_manifest(shas=("a" * 64, "c" * 64)),
        )
        report = compare_runs(base, new)
        assert report["regressed"] is True
        assert [row["id"] for row in report["determinism_drift"]] == ["fig14"]
        assert "DETERMINISM DRIFT" in render_compare(report)

    def test_hash_mismatch_across_seeds_is_not_drift(self):
        base, new = self._records(
            make_manifest(seed=0, shas=("a" * 64, "b" * 64)),
            make_manifest(seed=1, shas=("x" * 64, "y" * 64)),
        )
        report = compare_runs(base, new)
        assert report["determinism_drift"] == []
        assert report["seeds_match"] is False

    def test_hash_mismatch_across_code_is_not_drift(self):
        base, new = self._records(
            make_manifest(fingerprint="aaaa", shas=("a" * 64, "b" * 64)),
            make_manifest(fingerprint="bbbb", shas=("x" * 64, "y" * 64)),
        )
        assert compare_runs(base, new)["determinism_drift"] == []

    def test_metric_deltas_reported(self):
        base, new = self._records(
            make_manifest(dispatched=(100, 200)),
            make_manifest(dispatched=(100, 250)),
        )
        report = compare_runs(base, new)
        (delta,) = report["metric_deltas"]
        assert delta == {
            "id": "fig14",
            "delta_events_dispatched": 50,
            "delta_heap_high_watermark": 0,
        }

    def test_disjoint_experiments_reported_not_compared(self):
        base = build_history_record(make_manifest())
        new = copy.deepcopy(base)
        new["experiments"]["fig99"] = new["experiments"].pop("fig14")
        report = compare_runs(base, new)
        assert report["only_in_base"] == ["fig14"]
        assert report["only_in_new"] == ["fig99"]
        assert report["shared_experiments"] == 1

    def test_negative_threshold_rejected(self):
        base, new = self._records(make_manifest(), make_manifest())
        with pytest.raises(ObservabilityError, match="threshold"):
            compare_runs(base, new, wall_threshold=-0.1)


class TestCompareCli:
    def _write(self, tmp_path, name, manifest):
        path = tmp_path / name
        path.write_text(json.dumps(manifest))
        return str(path)

    def test_clean_compare_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        a = self._write(tmp_path, "a.json", make_manifest())
        b = self._write(tmp_path, "b.json", make_manifest())
        assert main(["compare", a, b]) == 0
        out = capsys.readouterr().out
        assert "determinism: 0 drifting results" in out
        assert "verdict: OK" in out

    def test_injected_regression_exits_one(self, tmp_path, capsys):
        from repro.cli import main

        a = self._write(tmp_path, "a.json", make_manifest(walls=(2.0, 4.0)))
        b = self._write(tmp_path, "b.json", make_manifest(walls=(2.0, 8.0)))
        assert main(["compare", a, b]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_threshold_flag_loosens_the_gate(self, tmp_path):
        from repro.cli import main

        a = self._write(tmp_path, "a.json", make_manifest(walls=(2.0, 4.0)))
        b = self._write(tmp_path, "b.json", make_manifest(walls=(2.0, 8.0)))
        assert main(["compare", a, b, "--threshold", "1.5"]) == 0

    def test_missing_file_exits_two(self, tmp_path, capsys):
        from repro.cli import main

        a = self._write(tmp_path, "a.json", make_manifest())
        assert main(["compare", a, str(tmp_path / "nope.json")]) == 2
        assert "compare:" in capsys.readouterr().err

    def test_json_output_parses(self, tmp_path, capsys):
        from repro.cli import main

        a = self._write(tmp_path, "a.json", make_manifest())
        b = self._write(tmp_path, "b.json", make_manifest())
        assert main(["compare", a, b, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["type"] == "compare"
        assert report["regressed"] is False


class TestEndToEndAcceptance:
    """The issue's acceptance path: two equal-seed run-alls diff clean."""

    def test_equal_seed_runs_have_zero_drift(self, tmp_path, capsys):
        from repro.cli import main

        manifests = []
        for index in range(2):
            path = tmp_path / f"m{index}.json"
            code = main(
                [
                    "run-all",
                    "--ids",
                    "fig9,table1",
                    "--jobs",
                    str(index + 1),
                    "--no-cache",
                    "--report",
                    str(path),
                    "--history-dir",
                    str(tmp_path / "hist"),
                ]
            )
            assert code == 0
            manifests.append(str(path))
        capsys.readouterr()
        assert main(["compare", manifests[0], manifests[1]]) == 0
        out = capsys.readouterr().out
        assert "determinism: 0 drifting results" in out
        history = load_history(tmp_path / "hist" / "perf_history.jsonl")
        assert len(history) == 2
        assert all(r["kind"] == "perf_history" for r in history)


def with_slo(manifest, status="ok", margin=0.25):
    """Attach a minimal v5 slo section to a make_manifest() manifest."""
    manifest = copy.deepcopy(manifest)
    manifest["slo"] = {
        "schema": 1,
        "specs": ["slos/fig5.json"],
        "counts": {
            "ok": 1 if status == "ok" else 0,
            "violated": 0 if status == "ok" else 1,
            "skipped": 0,
        },
        "ok": status == "ok",
        "objectives": [
            {
                "experiment": "fig5",
                "id": "client.demo.objective",
                "status": status,
                "margin": margin,
            }
        ],
    }
    return manifest


class TestSloInHistoryAndCompare:
    def test_history_record_carries_slo_summary(self):
        record = build_history_record(with_slo(make_manifest()))
        assert record["slo"]["counts"]["ok"] == 1
        assert record["slo"]["objectives"]["fig5:client.demo.objective"] == {
            "status": "ok",
            "margin": 0.25,
        }

    def test_manifest_without_slo_yields_empty_summary(self):
        assert build_history_record(make_manifest())["slo"] == {}

    def test_compare_reports_slo_flip_as_advisory(self):
        base = build_history_record(with_slo(make_manifest()))
        new = build_history_record(
            with_slo(make_manifest(), status="violated", margin=-0.1)
        )
        report = compare_runs(base, new)
        assert report["slo_flips"] == ["fig5:client.demo.objective"]
        row = report["slo_deltas"][0]
        assert row["base_status"] == "ok" and row["new_status"] == "violated"
        assert row["delta_margin"] == pytest.approx(-0.35)
        # Advisory: an SLO flip alone never regresses the compare verdict —
        # `repro slo --strict` is the SLO gate.
        assert report["regressed"] is False
        text = render_compare(report)
        assert "SLO flip" in text and "gate with 'repro slo'" in text

    def test_margin_drift_without_flip_reported(self):
        base = build_history_record(with_slo(make_manifest(), margin=0.25))
        new = build_history_record(with_slo(make_manifest(), margin=0.20))
        report = compare_runs(base, new)
        assert report["slo_flips"] == []
        assert report["slo_deltas"][0]["delta_margin"] == pytest.approx(-0.05)

    def test_identical_slo_sections_diff_silent(self):
        base = build_history_record(with_slo(make_manifest()))
        report = compare_runs(base, copy.deepcopy(base))
        assert report["slo_deltas"] == [] and report["slo_flips"] == []
