"""Error-hierarchy and testbed-scaffolding tests."""

import pytest

from repro import errors
from repro.core.config import Scheme
from repro.experiments.base import DEFAULT_OFFICE_OCCUPANCY, build_testbed


class TestErrorHierarchy:
    def test_all_library_errors_are_repro_errors(self):
        for name in (
            "ConfigurationError",
            "SimulationError",
            "CodecError",
            "TruncatedFrameError",
            "ChecksumError",
            "CircuitError",
            "MediumError",
            "QueueFullError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_truncated_is_codec_error(self):
        assert issubclass(errors.TruncatedFrameError, errors.CodecError)

    def test_checksum_is_codec_error(self):
        assert issubclass(errors.ChecksumError, errors.CodecError)

    def test_medium_error_is_simulation_error(self):
        assert issubclass(errors.MediumError, errors.SimulationError)

    def test_catching_the_base_catches_everything(self):
        with pytest.raises(errors.ReproError):
            raise errors.CircuitError("analog trouble")


class TestBuildTestbed:
    def test_default_shape(self):
        bed = build_testbed(Scheme.POWIFI)
        assert set(bed.media) == {1, 6, 11}
        assert bed.client.name == "client"
        assert bed.office is not None

    def test_office_disabled_with_none(self):
        bed = build_testbed(Scheme.POWIFI, office_occupancy=None)
        assert bed.office is None

    def test_office_disabled_with_zero(self):
        bed = build_testbed(Scheme.POWIFI, office_occupancy=0.0)
        assert bed.office is None

    def test_single_channel_variant(self):
        bed = build_testbed(Scheme.BASELINE, channels=(6,))
        assert set(bed.media) == {6}
        assert bed.router.client_station is bed.router.stations[6]

    def test_start_brings_everything_up(self):
        bed = build_testbed(Scheme.POWIFI, seed=2)
        bed.start()
        bed.sim.run(until=0.3)
        assert bed.router.cumulative_occupancy() > 0.5
        assert any(s.frames_generated > 0 for s in bed.office.sources.values())

    def test_seed_isolation(self):
        a = build_testbed(Scheme.POWIFI, seed=1)
        b = build_testbed(Scheme.POWIFI, seed=1)
        a.start()
        b.start()
        a.sim.run(until=0.2)
        b.sim.run(until=0.2)
        assert a.router.cumulative_occupancy() == b.router.cumulative_occupancy()

    def test_ambient_default_matches_section_2(self):
        # §2: "10-40 % range, mostly at the lower end".
        assert 0.1 <= DEFAULT_OFFICE_OCCUPANCY <= 0.4
