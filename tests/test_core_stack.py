"""Byte-level kernel-path tests: Power_Socket / Power_MACshim / IP_Power.

These exercise the §3.2 mechanism end to end on real datagram bytes and
pin its equivalence to the fast descriptor-based injector.
"""

import pytest

from repro.core.config import InjectorConfig
from repro.core.injector import PowerInjector
from repro.core.stack import (
    ENOBUFS,
    IpLocalOut,
    PowerMacShim,
    PowerSocket,
    UserSpaceInjector,
)
from repro.core.occupancy import OccupancyAnalyzer
from repro.errors import ConfigurationError
from repro.mac80211.frames import FrameJob, FrameKind
from repro.mac80211.medium import Medium
from repro.mac80211.station import Station
from repro.packets.ipv4 import IPv4Packet
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def build_stack(threshold=5, seed=0):
    sim = Simulator()
    streams = RandomStreams(seed)
    medium = Medium(sim, channel=1)
    station = Station(sim, name="router:ch1", streams=streams)
    medium.attach(station)
    shim = PowerMacShim()
    shim.register(0, station)
    ip = IpLocalOut(shim, queue_threshold=threshold)
    socket = PowerSocket(ip, interface_id=0)
    return sim, medium, station, shim, ip, socket


class TestShim:
    def test_queue_depth_query(self):
        sim, medium, station, shim, ip, socket = build_stack()
        assert shim.queue_depth(0) == 0
        station.enqueue(FrameJob(mac_bytes=100, rate_mbps=54.0, broadcast=True))
        assert shim.queue_depth(0) >= 1

    def test_duplicate_registration_rejected(self):
        sim, medium, station, shim, ip, socket = build_stack()
        with pytest.raises(ConfigurationError):
            shim.register(0, station)

    def test_unknown_interface_rejected(self):
        sim, medium, station, shim, ip, socket = build_stack()
        with pytest.raises(ConfigurationError):
            shim.queue_depth(9)


class TestIpLocalOut:
    def test_power_datagram_admitted_when_queue_shallow(self):
        sim, medium, station, shim, ip, socket = build_stack()
        assert socket.send() == 0
        assert station.queue_depth == 1
        assert ip.stats.power_admitted == 1

    def test_power_datagram_gated_at_threshold(self):
        sim, medium, station, shim, ip, socket = build_stack(threshold=2)
        assert socket.send() == 0
        assert socket.send() == 0
        assert socket.send() == ENOBUFS
        assert ip.stats.power_dropped == 1
        assert socket.rejected == 1

    def test_client_datagram_never_gated(self):
        sim, medium, station, shim, ip, socket = build_stack(threshold=1)
        socket.send()
        client = IPv4Packet(src="10.0.0.1", dst="10.0.0.9", payload=b"hi")
        assert ip.send(client) == 0
        assert ip.stats.client_datagrams == 1

    def test_no_threshold_never_drops(self):
        sim, medium, station, shim, ip, socket = build_stack(threshold=None)
        for _ in range(20):
            assert socket.send() == 0
        assert ip.stats.power_dropped == 0

    def test_frame_size_is_full_mpdu(self):
        sim, medium, station, shim, ip, socket = build_stack()
        socket.send()
        frame = station.queue.peek()
        # 1500-byte IP datagram + 24 MAC + 8 LLC + 4 FCS.
        assert frame.mac_bytes == 1536
        assert frame.kind is FrameKind.POWER

    def test_threshold_validation(self):
        shim = PowerMacShim()
        with pytest.raises(ConfigurationError):
            IpLocalOut(shim, queue_threshold=0)


class TestUserSpaceInjector:
    def test_byte_path_transmits_continuously(self):
        sim, medium, station, shim, ip, socket = build_stack()
        injector = UserSpaceInjector(sim, socket, InjectorConfig())
        injector.start()
        sim.run(until=0.5)
        assert socket.sent > 1000
        assert station.frames_sent > 1000

    def test_equivalent_to_descriptor_injector(self):
        """The byte path and the fast path must produce the same occupancy."""
        sim_b, medium_b, station_b, shim, ip, socket = build_stack(seed=3)
        analyzer_b = OccupancyAnalyzer(medium_b, station_filter="router:ch1")
        UserSpaceInjector(sim_b, socket, InjectorConfig()).start()
        sim_b.run(until=1.0)

        sim_f = Simulator()
        streams = RandomStreams(3)
        medium_f = Medium(sim_f, channel=1)
        station_f = Station(sim_f, name="router:ch1", streams=streams)
        medium_f.attach(station_f)
        analyzer_f = OccupancyAnalyzer(medium_f, station_filter="router:ch1")
        PowerInjector(sim_f, station_f, InjectorConfig()).start()
        sim_f.run(until=1.0)

        assert analyzer_b.occupancy() == pytest.approx(
            analyzer_f.occupancy(), rel=0.02
        )

    def test_stop(self):
        sim, medium, station, shim, ip, socket = build_stack()
        injector = UserSpaceInjector(sim, socket, InjectorConfig())
        injector.start()
        sim.run(until=0.1)
        injector.stop()
        sent = socket.sent
        sim.run(until=0.3)
        assert socket.sent == sent
