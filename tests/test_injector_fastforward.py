"""Injector idle-tick fast-forward: live-vs-dormant equivalence.

The injector's dormancy (see ``repro.core.injector``) must be invisible:
every counter, gate statistic and exported metric record must end up exactly
as the live per-tick loop produces at equal seed. The tests here run each
scenario twice in the same process — once normally (dormancy engages) and
once with a no-op ``Simulator.on_event`` debug hook installed, which is a
documented dormancy precondition and therefore forces the fully live path
without otherwise changing behaviour — and diff the complete observable
state, including the process-global frame-id sequence.
"""

import pytest

from repro.core.config import InjectorConfig
from repro.core.injector import IDLE_STREAK_BEFORE_SLEEP, PowerInjector
from repro.mac80211 import frames as frames_mod
from repro.mac80211.frames import FrameJob, FrameKind
from repro.mac80211.medium import Medium
from repro.mac80211.station import Station
from repro.netstack.txqueue import power_vs_client
from repro.obs import runtime as obs_runtime
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def build(
    seed, threshold, live, client_period_s=None, capacity=1000, delay_s=100e-6
):
    """One router interface with an injector, plus an optional CBR client."""
    sim = Simulator()
    if live:
        sim.on_event = lambda event: None  # documented dormancy kill-switch
    streams = RandomStreams(seed)
    medium = Medium(sim, channel=1)
    router = Station(
        sim,
        name="router:ch1",
        streams=streams,
        queue_capacity=capacity,
        queue_classifier=power_vs_client,
    )
    medium.attach(router)
    client = Station(sim, name="client", streams=streams)
    medium.attach(client)
    injector = PowerInjector(
        sim,
        router,
        InjectorConfig(queue_threshold=threshold, inter_packet_delay_s=delay_s),
        interface_id=1,
    )
    if client_period_s is not None:
        def emit():
            client.enqueue(
                FrameJob(
                    mac_bytes=400,
                    rate_mbps=24.0,
                    kind=FrameKind.DATA,
                    broadcast=True,
                    flow="client",
                )
            )

        sim.schedule_periodic(client_period_s, emit, name="client_cbr")
    return sim, medium, router, client, injector


def observable_state(sim, medium, router, client, injector):
    """Everything the fast-forward must preserve exactly."""
    gate = injector.gate
    hist = gate._m_depth_at_check
    return {
        "ticks": injector.ticks,
        "sent": injector.sent,
        "collided": injector.collided,
        "dropped_by_gate": injector.dropped_by_gate,
        "duty_cycle": injector.duty_cycle,
        "stalled_ticks": injector.stalled_ticks,
        "gate_considered": gate.stats.considered,
        "gate_admitted": gate.stats.admitted,
        "gate_dropped": gate.stats.dropped,
        "m_ticks": injector._m_ticks.value,
        "m_admitted": injector._m_admitted.value,
        "m_gated": injector._m_gated.value,
        "m_sent": injector._m_sent.value,
        "m_collided": injector._m_collided.value,
        "m_duty_value": injector._m_duty_cycle.value,
        "m_duty_updates": injector._m_duty_cycle.updates,
        "depth_hist": hist.to_record(),
        "depth_hist_reservoir": list(hist._reservoir),
        "depth_hist_stride": hist._stride,
        "depth_hist_seen": hist._seen,
        "router_sent": router.frames_sent,
        "router_dropped": router.frames_dropped,
        "router_bytes": router.bytes_sent,
        "queue_enqueued": router.queue.total_enqueued,
        "queue_tail_dropped": router.queue.total_tail_dropped,
        "queue_depth": router.queue.depth,
        "medium_tx": medium.transmission_count,
        "medium_collisions": medium.collision_count,
        "medium_busy": medium.total_busy_time,
        "client_sent": client.frames_sent,
        "now": sim.now,
    }


def run_scenario(live, threshold, seed=7, duration=0.25, **kwargs):
    obs_runtime.reset()
    sim, medium, router, client, injector = build(seed, threshold, live, **kwargs)
    injector.start()
    frame_id_start = next(frames_mod._frame_ids)
    sim.run(until=duration)
    state = observable_state(sim, medium, router, client, injector)
    state["frame_ids_consumed"] = next(frames_mod._frame_ids) - frame_id_start
    return state, sim, injector


class TestEquivalenceGatedMode:
    """POWIFI-style: threshold gates ticks while the power queue is full."""

    def test_counters_and_metrics_match_live(self):
        fast, sim, injector = run_scenario(live=False, threshold=5)
        live, _, _ = run_scenario(live=True, threshold=5)
        assert fast == live
        assert injector.ticks > 1000  # the scenario exercises real volume

    def test_dormancy_actually_engaged(self):
        # At a 20 us cadence a ~283 us drain cycle leaves ~13 consecutive
        # gated ticks — comfortably past the hysteresis streak.
        _, sim, injector = run_scenario(live=False, threshold=5, delay_s=20e-6)
        # Far fewer live dispatches than ticks proves fast-forwarding ran.
        assert sim.stats.callback_counts["power_inject"] < injector.ticks

    def test_fast_cadence_matches_live(self):
        fast, _, _ = run_scenario(live=False, threshold=5, delay_s=20e-6)
        live, _, _ = run_scenario(live=True, threshold=5, delay_s=20e-6)
        assert fast == live

    def test_with_contending_client(self):
        fast, _, _ = run_scenario(live=False, threshold=5, client_period_s=970e-6)
        live, _, _ = run_scenario(live=True, threshold=5, client_period_s=970e-6)
        assert fast == live


class TestEquivalenceSaturatedMode:
    """NO_QUEUE-style: no gate; the full class tail-drops every tick."""

    def test_counters_and_metrics_match_live(self):
        fast, _, _ = run_scenario(live=False, threshold=None, capacity=40)
        live, _, _ = run_scenario(live=True, threshold=None, capacity=40)
        assert fast == live

    def test_frame_ids_still_consumed(self):
        fast, _, injector = run_scenario(live=False, threshold=None, capacity=40)
        # Tail-dropped ticks still burn one frame id each (plus the client
        # and beacon-free drains); the id sequence must not shrink.
        assert fast["frame_ids_consumed"] >= injector.ticks

    def test_with_contending_client(self):
        fast, _, _ = run_scenario(
            live=False, threshold=None, capacity=40, client_period_s=970e-6
        )
        live, _, _ = run_scenario(
            live=True, threshold=None, capacity=40, client_period_s=970e-6
        )
        assert fast == live


class TestSegmentedRuns:
    """fig6c drives the clock in 1 s segments; dormancy spans run() calls."""

    def test_segmented_equals_single_run(self):
        obs_runtime.reset()
        sim, medium, router, client, injector = build(3, 5, live=False)
        injector.start()
        for _ in range(5):
            sim.run(until=sim.now + 0.05)
        segmented = observable_state(sim, medium, router, client, injector)

        obs_runtime.reset()
        sim2, medium2, router2, client2, injector2 = build(3, 5, live=True)
        injector2.start()
        sim2.run(until=0.25)
        live_state = observable_state(sim2, medium2, router2, client2, injector2)
        assert segmented == live_state

    def test_at_rest_reads_are_settled(self):
        obs_runtime.reset()
        sim, medium, router, client, injector = build(3, 5, live=False)
        injector.start()
        sim.run(until=0.1)
        # After run() returns, the run-end hook must have materialised every
        # skipped tick: reading twice gives the same answer and matches the
        # internal counter exactly.
        first = injector.ticks
        assert injector.ticks == first
        assert injector._ticks == first


class TestFaultsOverlappingDormancy:
    def test_stall_wakes_and_freezes_cadence(self):
        obs_runtime.reset()
        sim, medium, router, client, injector = build(11, 5, live=False)
        injector.start()
        sim.run(until=0.05)
        sim.schedule(0.01, injector.stall_for, 0.02)
        sim.run(until=sim.now + 0.05)
        assert injector.stalled_ticks > 0

        obs_runtime.reset()
        sim2, medium2, router2, client2, injector2 = build(11, 5, live=True)
        injector2.start()
        sim2.run(until=0.05)
        sim2.schedule(0.01, injector2.stall_for, 0.02)
        sim2.run(until=sim2.now + 0.05)
        assert injector.stalled_ticks == injector2.stalled_ticks
        assert injector.ticks == injector2.ticks
        assert injector.dropped_by_gate == injector2.dropped_by_gate

    def test_outage_overlapping_skipped_region(self):
        def scenario(live):
            obs_runtime.reset()
            sim, medium, router, client, injector = build(13, 5, live=live)
            injector.start()
            sim.run(until=0.03)
            # Hold the channel busy across many would-be ticks: the queue
            # stays full, dormancy (fast path) persists through the outage.
            sim.schedule(0.005, medium.inject_outage, 0.04)
            sim.run(until=0.12)
            return observable_state(sim, medium, router, client, injector)

        assert scenario(live=False) == scenario(live=True)

    def test_forced_overflow_overlapping_dormancy(self):
        def scenario(live):
            obs_runtime.reset()
            sim, medium, router, client, injector = build(
                17, None, live=live, capacity=30
            )
            injector.start()
            sim.run(until=0.03)
            sim.schedule(0.004, router.queue.begin_forced_overflow)
            sim.schedule(0.020, router.queue.end_forced_overflow)
            sim.run(until=0.1)
            state = observable_state(sim, medium, router, client, injector)
            state["forced_dropped"] = router.queue.total_forced_dropped
            return state

        assert scenario(live=False) == scenario(live=True)

    def test_retune_during_dormancy(self):
        def scenario(live):
            obs_runtime.reset()
            sim, medium, router, client, injector = build(19, 5, live=live)
            injector.start()
            sim.run(until=0.03)
            sim.schedule(0.0041, injector.set_inter_packet_delay, 250e-6)
            sim.run(until=0.1)
            return observable_state(sim, medium, router, client, injector)

        assert scenario(live=False) == scenario(live=True)

    def test_stop_during_dormancy_settles(self):
        def scenario(live):
            obs_runtime.reset()
            sim, medium, router, client, injector = build(23, 5, live=live)
            injector.start()
            sim.run(until=0.03)
            sim.schedule(0.0072, injector.stop)
            sim.run(until=0.06)
            return observable_state(sim, medium, router, client, injector)

        assert scenario(live=False) == scenario(live=True)


class TestDormancyPreconditions:
    def test_trace_subscription_disables_fast_forward(self):
        obs_runtime.configure(enabled=True, trace_kinds=["core.gate_drop"])
        try:
            sim, medium, router, client, injector = build(29, 5, live=False)
            injector.start()
            sim.run(until=0.05)
            # Every tick dispatched live: the trace wants per-tick records.
            assert sim.stats.callback_counts["power_inject"] == (
                injector.ticks + injector.stalled_ticks
            )
            assert len(sim.trace.records) > 0
        finally:
            obs_runtime.reset()

    def test_hysteresis_constant_is_small(self):
        # The streak gate trades a handful of live ticks per window; keep it
        # within the same order as the sleep/wake bookkeeping cost.
        assert 1 <= IDLE_STREAK_BEFORE_SLEEP <= 16
