"""Radiotap, pcap, and power-frame builder tests — the capture pipeline."""

import io

import pytest

from repro.errors import CodecError, TruncatedFrameError
from repro.packets.builder import (
    DEFAULT_IP_DATAGRAM_BYTES,
    PowerPacketBuilder,
    build_power_frame,
)
from repro.packets.dot11 import Dot11Data, MacAddress
from repro.packets.ipv4 import IPv4Packet
from repro.packets.llc import LlcSnapHeader
from repro.packets.pcap import (
    LINKTYPE_IEEE802_11_RADIOTAP,
    PcapReader,
    PcapWriter,
)
from repro.packets.radiotap import FLAG_FCS_AT_END, RadiotapHeader
from repro.packets.udp import UdpDatagram


class TestRadiotap:
    def test_round_trip(self):
        header = RadiotapHeader(tsft_us=123456, rate_mbps=54.0, channel_mhz=2437)
        decoded, rest = RadiotapHeader.decode(header.encode() + b"frame")
        assert decoded.tsft_us == 123456
        assert decoded.rate_mbps == 54.0
        assert decoded.channel_mhz == 2437
        assert rest == b"frame"

    def test_half_mbps_rates(self):
        header = RadiotapHeader(rate_mbps=5.5)
        decoded, _ = RadiotapHeader.decode(header.encode())
        assert decoded.rate_mbps == 5.5

    def test_fcs_flag(self):
        assert RadiotapHeader().has_fcs
        no_fcs = RadiotapHeader(flags=0)
        decoded, _ = RadiotapHeader.decode(no_fcs.encode())
        assert not decoded.has_fcs

    def test_alignment_of_tsft(self):
        # TSFT is 8-byte aligned: header starts with 8 bytes of preamble,
        # so no pad bytes needed, total length is deterministic.
        raw = RadiotapHeader().encode()
        declared = int.from_bytes(raw[2:4], "little")
        assert declared == len(raw)

    def test_unknown_present_bits_rejected(self):
        raw = bytearray(RadiotapHeader().encode())
        raw[4] |= 0x20  # claim an extra field we do not emit
        with pytest.raises(CodecError):
            RadiotapHeader.decode(bytes(raw))

    def test_bad_version_rejected(self):
        raw = bytearray(RadiotapHeader().encode())
        raw[0] = 1
        with pytest.raises(CodecError):
            RadiotapHeader.decode(bytes(raw))

    def test_unencodable_rate_rejected(self):
        with pytest.raises(CodecError):
            RadiotapHeader(rate_mbps=1000.0).encode()


class TestPcap:
    def test_write_read_round_trip(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        writer.write(1.5, b"first")
        writer.write(2.25, b"second")
        writer.close()
        records = PcapReader(buffer.getvalue()).read_all()
        assert [r.data for r in records] == [b"first", b"second"]
        assert records[0].timestamp == pytest.approx(1.5, abs=1e-6)
        assert records[1].timestamp == pytest.approx(2.25, abs=1e-6)

    def test_linktype_preserved(self):
        buffer = io.BytesIO()
        PcapWriter(buffer, linktype=LINKTYPE_IEEE802_11_RADIOTAP).close()
        reader = PcapReader(buffer.getvalue())
        assert reader.linktype == LINKTYPE_IEEE802_11_RADIOTAP

    def test_snaplen_truncates(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer, snaplen=4)
        writer.write(0.0, b"longpayload")
        writer.close()
        (record,) = PcapReader(buffer.getvalue()).read_all()
        assert record.data == b"long"
        assert record.truncated
        assert record.original_length == len(b"longpayload")

    def test_packet_count(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        for i in range(5):
            writer.write(float(i), b"x")
        assert writer.packet_count == 5

    def test_bad_magic_rejected(self):
        with pytest.raises(CodecError):
            PcapReader(b"\x00" * 24)

    def test_truncated_global_header_rejected(self):
        with pytest.raises(TruncatedFrameError):
            PcapReader(b"\x00" * 10)

    def test_truncated_record_rejected(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        writer.write(0.0, b"data")
        raw = buffer.getvalue()[:-2]  # cut the record body
        reader = PcapReader(raw)
        with pytest.raises(TruncatedFrameError):
            list(reader)

    def test_negative_timestamp_rejected(self):
        writer = PcapWriter(io.BytesIO())
        with pytest.raises(CodecError):
            writer.write(-1.0, b"x")

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "capture.pcap")
        with PcapWriter(path) as writer:
            writer.write(1.0, b"on-disk")
        with PcapReader(path) as reader:
            (record,) = reader.read_all()
        assert record.data == b"on-disk"

    def test_microsecond_rollover(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        writer.write(0.9999996, b"x")  # rounds to 1.0 s exactly
        writer.close()
        (record,) = PcapReader(buffer.getvalue()).read_all()
        assert record.timestamp == pytest.approx(1.0, abs=1e-6)


class TestPowerPacketBuilder:
    def test_default_frame_size(self):
        frame = build_power_frame()
        # 24 MAC + 8 LLC + 1500 IP + 4 FCS.
        assert len(frame) == 1536

    def test_full_stack_parses(self):
        frame = Dot11Data.decode(build_power_frame(interface_id=2))
        assert frame.header.addr1.is_broadcast
        llc, ip_bytes = LlcSnapHeader.decode(frame.payload)
        packet = IPv4Packet.decode(ip_bytes)
        assert packet.is_power_packet
        assert packet.power_option.interface_id == 2
        assert packet.dst == "255.255.255.255"
        udp = UdpDatagram.decode(packet.payload, packet.src, packet.dst)
        assert udp.dst_port == 47000

    def test_ip_datagram_is_exactly_1500(self):
        builder = PowerPacketBuilder(interface_id=0)
        assert len(builder.build_ip_datagram().encode()) == DEFAULT_IP_DATAGRAM_BYTES

    def test_sequence_increments(self):
        builder = PowerPacketBuilder(interface_id=0)
        first = builder.build_ip_datagram()
        second = builder.build_ip_datagram()
        assert second.identification == first.identification + 1

    def test_mac_frame_bytes_matches_encoding(self):
        builder = PowerPacketBuilder(interface_id=1)
        assert builder.mac_frame_bytes == len(builder.build_frame().encode())

    def test_too_small_datagram_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            PowerPacketBuilder(interface_id=0, ip_datagram_bytes=10)

    def test_custom_size(self):
        frame = build_power_frame(ip_datagram_bytes=500)
        assert len(frame) == 24 + 8 + 500 + 4
