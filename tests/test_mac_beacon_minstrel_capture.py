"""Beacon source, Minstrel rate control, and monitor-capture tests."""

import pytest

from repro.core.occupancy import occupancy_from_pcap
from repro.errors import ConfigurationError
from repro.mac80211.beacon import BEACON_INTERVAL_S, BeaconSource
from repro.mac80211.capture import MonitorCapture
from repro.mac80211.frames import FrameJob, FrameKind
from repro.mac80211.medium import Medium
from repro.mac80211.rate_control import MinstrelLite
from repro.mac80211.station import Station
from repro.packets.pcap import PcapReader
from repro.packets.radiotap import RadiotapHeader
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def build_channel(seed=0):
    sim = Simulator()
    streams = RandomStreams(seed)
    medium = Medium(sim, channel=6)
    station = Station(sim, name="ap", streams=streams)
    medium.attach(station)
    return sim, streams, medium, station


class TestBeaconSource:
    def test_beacon_cadence(self):
        sim, streams, medium, station = build_channel()
        source = BeaconSource(sim, station)
        source.start()
        sim.run(until=1.0)
        # ~1 s / 102.4 ms plus the one at t=0.
        assert 9 <= source.beacons_sent <= 11

    def test_stop_halts_beacons(self):
        sim, streams, medium, station = build_channel()
        source = BeaconSource(sim, station)
        source.start()
        sim.run(until=0.3)
        count = source.beacons_sent
        source.stop()
        sim.run(until=1.0)
        assert source.beacons_sent <= count + 1  # at most one in flight

    def test_start_idempotent(self):
        sim, streams, medium, station = build_channel()
        source = BeaconSource(sim, station)
        source.start()
        source.start()
        sim.run(until=0.25)
        assert source.beacons_sent <= 4

    def test_interval_validation(self):
        sim, streams, medium, station = build_channel()
        with pytest.raises(ConfigurationError):
            BeaconSource(sim, station, interval_s=0.0)

    def test_default_interval_is_102_4ms(self):
        assert BEACON_INTERVAL_S == pytest.approx(0.1024)


class TestMinstrel:
    def test_starts_at_highest_expected_throughput(self):
        minstrel = MinstrelLite(probe_fraction=0.0)
        assert minstrel.select() == 54.0

    def test_failures_push_rate_down(self):
        minstrel = MinstrelLite(probe_fraction=0.0)
        for _ in range(50):
            minstrel.report(54.0, False)
            minstrel.report(48.0, False)
        assert minstrel.select() < 48.0

    def test_recovery_after_success(self):
        minstrel = MinstrelLite(probe_fraction=0.0)
        for _ in range(50):
            minstrel.report(54.0, False)
        low = minstrel.select()
        for _ in range(100):
            minstrel.report(54.0, True)
        assert minstrel.select() == 54.0
        assert low < 54.0

    def test_probing_samples_other_rates(self):
        minstrel = MinstrelLite(probe_fraction=0.5)
        picks = {minstrel.select() for _ in range(200)}
        assert len(picks) > 1

    def test_report_ignores_unknown_rate(self):
        minstrel = MinstrelLite(rates=(6.0, 54.0))
        minstrel.report(11.0, False)  # not managed; must not raise
        assert minstrel.attempts[54.0] == 0

    def test_expected_throughput_ranking(self):
        minstrel = MinstrelLite()
        # With equal success probabilities the fastest rate wins.
        assert minstrel.best_rate == 54.0

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            MinstrelLite(rates=())
        with pytest.raises(ConfigurationError):
            MinstrelLite(probe_fraction=1.5)
        with pytest.raises(ConfigurationError):
            MinstrelLite(rates=(10.0,))


class TestMonitorCapture:
    def test_captures_transmitted_frames(self):
        sim, streams, medium, station = build_channel()
        capture = MonitorCapture(medium)
        for _ in range(3):
            station.enqueue(
                FrameJob(mac_bytes=1536, rate_mbps=54.0, kind=FrameKind.POWER, broadcast=True)
            )
        sim.run()
        capture.close()
        records = PcapReader(capture.getvalue()).read_all()
        assert len(records) == 3

    def test_radiotap_headers_carry_rate_and_channel(self):
        sim, streams, medium, station = build_channel()
        capture = MonitorCapture(medium)
        station.enqueue(
            FrameJob(mac_bytes=1536, rate_mbps=54.0, kind=FrameKind.POWER, broadcast=True)
        )
        sim.run()
        capture.close()
        (record,) = PcapReader(capture.getvalue()).read_all()
        header, frame = RadiotapHeader.decode(record.data)
        assert header.rate_mbps == 54.0
        assert header.channel_mhz == 2437
        assert len(frame) == 1536

    def test_station_filter(self):
        sim, streams, medium, station = build_channel()
        other = Station(sim, name="other", streams=streams)
        medium.attach(other)
        capture = MonitorCapture(medium, station_filter="ap")
        station.enqueue(FrameJob(mac_bytes=500, rate_mbps=54.0, broadcast=True))
        other.enqueue(FrameJob(mac_bytes=700, rate_mbps=24.0, broadcast=True))
        sim.run()
        capture.close()
        records = PcapReader(capture.getvalue()).read_all()
        assert len(records) == 1

    def test_pcap_occupancy_pipeline_end_to_end(self):
        """The full §4 measurement path: transmit -> capture -> analyse."""
        sim, streams, medium, station = build_channel()
        capture = MonitorCapture(medium, station_filter="ap")
        for _ in range(20):
            station.enqueue(
                FrameJob(mac_bytes=1536, rate_mbps=54.0, kind=FrameKind.POWER, broadcast=True)
            )
        sim.run(until=0.01)
        duration = 0.01
        capture.close()
        occupancy = occupancy_from_pcap(capture.getvalue(), duration_s=duration)
        # 20 frames x 227.6 us payload-time over 10 ms -> ~0.46; frames are
        # spaced by DIFS+backoff so expect a bit less than saturation.
        assert 0.3 < occupancy < 0.7
