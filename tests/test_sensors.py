"""Sensor-application tests: the §5 temperature sensor, camera and §8a
charger."""

import pytest

from repro.errors import ConfigurationError
from repro.rf.link import LinkBudget, Transmitter
from repro.rf.materials import WALL_MATERIALS
from repro.sensors.camera import IMAGE_CAPTURE_ENERGY_J, QCIF_FRAME_BYTES, WiFiCamera
from repro.sensors.charger import (
    UsbWiFiCharger,
    hotspot_incident_power_dbm,
)
from repro.sensors.mcu import (
    MCU_MIN_VOLTAGE_V,
    Msp430Fr5969,
    SensorLoad,
    TEMPERATURE_LOAD,
    TEMPERATURE_READ_ENERGY_J,
)
from repro.sensors.temperature import TemperatureSensor


@pytest.fixture
def link():
    return LinkBudget(Transmitter(tx_power_dbm=30.0))


class TestMcu:
    def test_paper_energy_constants(self):
        assert TEMPERATURE_READ_ENERGY_J == pytest.approx(2.77e-6)
        assert IMAGE_CAPTURE_ENERGY_J == pytest.approx(10.4e-3)

    def test_mcu_voltage_threshold(self):
        mcu = Msp430Fr5969()
        assert mcu.can_run_at(2.4)
        assert not mcu.can_run_at(1.5)
        assert MCU_MIN_VOLTAGE_V == pytest.approx(1.9)

    def test_qcif_frame_fits_fram(self):
        """§5.2: one grey-scale QCIF frame must fit the 64 KB FRAM."""
        assert QCIF_FRAME_BYTES <= Msp430Fr5969().fram_bytes

    def test_operations_per_second(self):
        assert TEMPERATURE_LOAD.operations_per_second(2.77e-6) == pytest.approx(1.0)
        assert TEMPERATURE_LOAD.operations_per_second(0.0) == 0.0

    def test_load_validation(self):
        with pytest.raises(ConfigurationError):
            SensorLoad(name="bad", energy_per_operation_j=0.0)
        with pytest.raises(ConfigurationError):
            TEMPERATURE_LOAD.operations_per_second(-1.0)


class TestTemperatureSensor:
    def test_battery_free_range_near_20ft(self, link):
        """Fig 11: the battery-free sensor operates to 20 feet."""
        sensor = TemperatureSensor(battery_recharging=False)
        assert sensor.range_feet(link) == pytest.approx(20.0, abs=2.5)

    def test_battery_recharging_range_near_28ft(self, link):
        """Fig 11: energy-neutral operation to 28 feet."""
        sensor = TemperatureSensor(battery_recharging=True)
        assert sensor.range_feet(link) == pytest.approx(28.0, abs=2.5)

    def test_update_rate_decreases_with_distance(self, link):
        sensor = TemperatureSensor()
        rates = [
            sensor.evaluate_at(link, d).update_rate_hz for d in (3, 6, 10, 15, 20)
        ]
        assert rates == sorted(rates, reverse=True)

    def test_builds_similar_up_close(self, link):
        """Fig 11: 'At closer distances, both harvesters have similar
        update rates.'"""
        free = TemperatureSensor(battery_recharging=False)
        recharging = TemperatureSensor(battery_recharging=True)
        at_3ft = (
            free.evaluate_at(link, 3.0).update_rate_hz,
            recharging.evaluate_at(link, 3.0).update_rate_hz,
        )
        assert 0.5 < at_3ft[0] / at_3ft[1] < 2.0

    def test_battery_build_wins_beyond_15ft(self, link):
        """Fig 11: past 15 feet the battery-recharging build is ahead."""
        free = TemperatureSensor(battery_recharging=False)
        recharging = TemperatureSensor(battery_recharging=True)
        assert (
            recharging.evaluate_at(link, 18.0).update_rate_hz
            > free.evaluate_at(link, 18.0).update_rate_hz
        )

    def test_update_rate_scales_with_occupancy(self, link):
        sensor = TemperatureSensor()
        rx = link.received_power_dbm_at_feet(8.0)
        assert sensor.update_rate_hz(rx, occupancy=0.9) > sensor.update_rate_hz(
            rx, occupancy=0.45
        )

    def test_zero_occupancy_means_no_readings(self, link):
        sensor = TemperatureSensor()
        rx = link.received_power_dbm_at_feet(8.0)
        assert sensor.update_rate_hz(rx, occupancy=0.0) == 0.0

    def test_occupancy_validation(self):
        sensor = TemperatureSensor()
        with pytest.raises(ConfigurationError):
            sensor.harvested_power_w(-10.0, occupancy=-0.1)

    def test_read_energy_validation(self):
        with pytest.raises(ConfigurationError):
            TemperatureSensor(read_energy_j=0.0)


class TestCamera:
    def test_battery_free_range_near_17ft(self, link):
        """Fig 12: battery-free camera to 17 feet."""
        camera = WiFiCamera(battery_recharging=False)
        assert camera.range_feet(link) == pytest.approx(17.0, abs=2.0)

    def test_battery_recharging_range_past_23ft(self, link):
        """Fig 12 + §5.2: energy-neutral at 23 ft, operating to ~26.5 ft."""
        camera = WiFiCamera(battery_recharging=True)
        range_feet = camera.range_feet(link)
        assert 23.0 <= range_feet <= 30.0

    def test_camera_range_shorter_than_temp_sensor(self, link):
        """Figs 11/12: 17 ft camera vs 20 ft temperature sensor."""
        camera = WiFiCamera(battery_recharging=False)
        sensor = TemperatureSensor(battery_recharging=False)
        assert camera.range_feet(link) < sensor.range_feet(link)

    def test_inter_frame_time_grows_with_distance(self, link):
        camera = WiFiCamera()
        times = [
            camera.evaluate_at(link, d).inter_frame_time_s for d in (5, 10, 15)
        ]
        assert times == sorted(times)

    def test_out_of_range_is_infinite(self, link):
        camera = WiFiCamera()
        assert camera.evaluate_at(link, 40.0).inter_frame_time_s == float("inf")
        assert not camera.evaluate_at(link, 40.0).operational

    def test_wall_increases_inter_frame_time(self, link):
        camera = WiFiCamera()
        bare = camera.evaluate_at(link, 5.0).inter_frame_time_s
        walled = camera.evaluate_at(
            link, 5.0, wall=WALL_MATERIALS["sheetrock"]
        ).inter_frame_time_s
        assert walled > bare

    def test_minutes_conversion(self, link):
        outcome = camera_outcome = WiFiCamera().evaluate_at(link, 5.0)
        assert outcome.inter_frame_minutes == pytest.approx(
            outcome.inter_frame_time_s / 60.0
        )

    def test_capture_energy_validation(self):
        with pytest.raises(ConfigurationError):
            WiFiCamera(capture_energy_j=0.0)


class TestCharger:
    def test_paper_current_and_charge(self):
        """§8(a): ~2.3 mA average; 0 -> ~41 % in 2.5 hours."""
        charger = UsbWiFiCharger()
        incident = hotspot_incident_power_dbm()
        session = charger.charge_session(incident, 2.5)
        assert session.average_current_ma == pytest.approx(2.3, abs=0.5)
        assert session.charge_fraction_gained == pytest.approx(0.41, abs=0.08)

    def test_current_scales_with_power(self):
        charger = UsbWiFiCharger()
        assert charger.charging_current_ma(15.0) > charger.charging_current_ma(5.0)

    def test_charge_never_exceeds_full(self):
        charger = UsbWiFiCharger()
        session = charger.charge_session(
            hotspot_incident_power_dbm(), duration_hours=100.0
        )
        assert session.charge_fraction_gained <= 1.0

    def test_initial_fraction_respected(self):
        charger = UsbWiFiCharger()
        session = charger.charge_session(
            hotspot_incident_power_dbm(), duration_hours=100.0, initial_fraction=0.9
        )
        assert session.charge_fraction_gained <= 0.1 + 1e-9

    def test_closer_is_stronger(self):
        assert hotspot_incident_power_dbm(5.0) > hotspot_incident_power_dbm(7.0)

    def test_validation(self):
        charger = UsbWiFiCharger()
        with pytest.raises(ConfigurationError):
            charger.charge_session(0.0, duration_hours=0.0)
        with pytest.raises(ConfigurationError):
            charger.charge_session(0.0, 1.0, initial_fraction=1.5)
        with pytest.raises(ConfigurationError):
            hotspot_incident_power_dbm(0.0)
        with pytest.raises(ConfigurationError):
            UsbWiFiCharger(regulator_efficiency=0.0)
