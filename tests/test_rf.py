"""RF substrate tests: propagation, antennas, materials, link budgets."""

import pytest

from repro.errors import ConfigurationError
from repro.rf.antenna import Antenna, ASUS_ROUTER_ANTENNA, HARVESTER_ANTENNA
from repro.rf.link import LinkBudget, Transmitter
from repro.rf.materials import WALL_MATERIALS, WallMaterial
from repro.rf.propagation import (
    FreeSpacePathLoss,
    INDOOR_LOS_EXPONENT,
    LogDistancePathLoss,
)


class TestFreeSpace:
    def test_reference_value(self):
        # Friis at 1 m, 2.437 GHz is ~40.2 dB.
        assert FreeSpacePathLoss().path_loss_db(1.0, 2.437e9) == pytest.approx(
            40.2, abs=0.1
        )

    def test_inverse_square(self):
        model = FreeSpacePathLoss()
        assert model.path_loss_db(20.0, 2.437e9) - model.path_loss_db(
            10.0, 2.437e9
        ) == pytest.approx(6.02, abs=0.01)

    def test_rejects_zero_distance(self):
        with pytest.raises(ConfigurationError):
            FreeSpacePathLoss().path_loss_db(0.0, 2.437e9)


class TestLogDistance:
    def test_matches_free_space_at_reference(self):
        model = LogDistancePathLoss(exponent=3.0, reference_distance_m=1.0)
        assert model.path_loss_db(1.0, 2.437e9) == pytest.approx(
            FreeSpacePathLoss().path_loss_db(1.0, 2.437e9)
        )

    def test_exponent_scales_decay(self):
        model = LogDistancePathLoss(exponent=3.0)
        delta = model.path_loss_db(10.0, 2.437e9) - model.path_loss_db(1.0, 2.437e9)
        assert delta == pytest.approx(30.0, abs=0.01)

    def test_below_reference_falls_back_to_free_space(self):
        model = LogDistancePathLoss(exponent=4.0, reference_distance_m=2.0)
        assert model.path_loss_db(1.0, 2.437e9) == pytest.approx(
            FreeSpacePathLoss().path_loss_db(1.0, 2.437e9)
        )

    def test_continuous_at_reference(self):
        model = LogDistancePathLoss(exponent=4.0, reference_distance_m=2.0)
        just_below = model.path_loss_db(1.999, 2.437e9)
        just_above = model.path_loss_db(2.001, 2.437e9)
        assert abs(just_above - just_below) < 0.1

    def test_rejects_bad_exponent(self):
        with pytest.raises(ConfigurationError):
            LogDistancePathLoss(exponent=0.0)

    def test_indoor_exponent_is_waveguided(self):
        assert 1.5 < INDOOR_LOS_EXPONENT < 2.0


class TestAntenna:
    def test_effective_gain_with_perfect_efficiency(self):
        assert Antenna(gain_dbi=6.0).effective_gain_dbi == pytest.approx(6.0)

    def test_efficiency_reduces_gain(self):
        lossy = Antenna(gain_dbi=6.0, efficiency=0.5)
        assert lossy.effective_gain_dbi == pytest.approx(6.0 - 3.01, abs=0.01)

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ConfigurationError):
            Antenna(gain_dbi=2.0, efficiency=0.0)

    def test_paper_antennas(self):
        assert HARVESTER_ANTENNA.gain_dbi == 2.0
        assert ASUS_ROUTER_ANTENNA.gain_dbi == pytest.approx(4.04)


class TestMaterials:
    def test_all_fig13_materials_present(self):
        for name in ("free-space", "glass", "wood", "hollow-wall", "sheetrock"):
            assert name in WALL_MATERIALS

    def test_fig13_attenuation_ordering(self):
        # The paper's bars increase monotonically in this order.
        order = ["free-space", "wood", "glass", "hollow-wall", "sheetrock"]
        values = [WALL_MATERIALS[n].attenuation_db for n in order]
        assert values == sorted(values)

    def test_rejects_negative_attenuation(self):
        with pytest.raises(ConfigurationError):
            WallMaterial("bad", 1.0, -1.0)


class TestLinkBudget:
    def test_eirp(self):
        tx = Transmitter(tx_power_dbm=30.0)
        assert tx.eirp_dbm == pytest.approx(36.0)

    def test_received_power_at_paper_geometry(self):
        # 30 dBm + 6 dBi router, 2 dBi harvester, ~20 ft: near the
        # battery-free sensitivity, which is what sets the 20-ft range.
        link = LinkBudget(Transmitter(tx_power_dbm=30.0))
        rx = link.received_power_dbm_at_feet(20.0)
        assert -19.0 < rx < -15.0

    def test_monotone_decreasing_with_distance(self):
        link = LinkBudget(Transmitter(tx_power_dbm=30.0))
        powers = [link.received_power_dbm_at_feet(d) for d in (5, 10, 20, 40)]
        assert powers == sorted(powers, reverse=True)

    def test_wall_subtracts_attenuation(self):
        bare = LinkBudget(Transmitter(tx_power_dbm=30.0))
        walled = LinkBudget(
            Transmitter(tx_power_dbm=30.0), wall=WALL_MATERIALS["sheetrock"]
        )
        delta = bare.received_power_dbm(2.0) - walled.received_power_dbm(2.0)
        assert delta == pytest.approx(WALL_MATERIALS["sheetrock"].attenuation_db)

    def test_received_power_watts_consistency(self):
        from repro.units import dbm_to_watts

        link = LinkBudget(Transmitter(tx_power_dbm=30.0))
        assert link.received_power_watts(3.0) == pytest.approx(
            dbm_to_watts(link.received_power_dbm(3.0))
        )

    def test_range_for_sensitivity(self):
        link = LinkBudget(Transmitter(tx_power_dbm=30.0))
        range_feet = link.range_for_sensitivity_feet(-17.8)
        assert 15.0 < range_feet < 30.0

    def test_higher_sensitivity_shortens_range(self):
        link = LinkBudget(Transmitter(tx_power_dbm=30.0))
        assert link.range_for_sensitivity_feet(-15.0) < link.range_for_sensitivity_feet(
            -19.3
        )

    def test_rejects_zero_distance(self):
        link = LinkBudget(Transmitter(tx_power_dbm=30.0))
        with pytest.raises(ConfigurationError):
            link.received_power_dbm(0.0)
