"""Unit-conversion tests."""

import math

import pytest

from repro import units


class TestPowerConversions:
    def test_zero_dbm_is_one_milliwatt(self):
        assert units.dbm_to_watts(0.0) == pytest.approx(1e-3)

    def test_thirty_dbm_is_one_watt(self):
        assert units.dbm_to_watts(30.0) == pytest.approx(1.0)

    def test_negative_dbm(self):
        assert units.dbm_to_watts(-30.0) == pytest.approx(1e-6)

    def test_watts_to_dbm_round_trip(self):
        for dbm in (-20.0, -3.0, 0.0, 10.0, 23.0, 30.0):
            assert units.watts_to_dbm(units.dbm_to_watts(dbm)) == pytest.approx(dbm)

    def test_watts_to_dbm_rejects_zero(self):
        with pytest.raises(ValueError):
            units.watts_to_dbm(0.0)

    def test_watts_to_dbm_rejects_negative(self):
        with pytest.raises(ValueError):
            units.watts_to_dbm(-1.0)

    def test_milliwatts_round_trip(self):
        assert units.milliwatts_to_dbm(units.dbm_to_milliwatts(7.0)) == pytest.approx(7.0)

    def test_milliwatts_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.milliwatts_to_dbm(0.0)


class TestDbRatios:
    def test_three_db_doubles(self):
        assert units.db_to_linear(3.0103) == pytest.approx(2.0, rel=1e-3)

    def test_linear_to_db_round_trip(self):
        assert units.linear_to_db(units.db_to_linear(-12.5)) == pytest.approx(-12.5)

    def test_linear_to_db_rejects_zero(self):
        with pytest.raises(ValueError):
            units.linear_to_db(0.0)


class TestDistance:
    def test_feet_to_meters(self):
        assert units.feet_to_meters(10.0) == pytest.approx(3.048)

    def test_meters_to_feet_round_trip(self):
        assert units.meters_to_feet(units.feet_to_meters(17.0)) == pytest.approx(17.0)


class TestWavelength:
    def test_wifi_wavelength(self):
        # 2.437 GHz -> ~12.3 cm, the half-wavelength antenna spacing of §4.
        assert units.wavelength(2.437e9) == pytest.approx(0.123, abs=1e-3)

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            units.wavelength(0.0)


class TestNoise:
    def test_thermal_noise_20mhz(self):
        # kTB over 20 MHz at 290 K is about -101 dBm.
        noise = units.thermal_noise_watts(20e6)
        assert units.watts_to_dbm(noise) == pytest.approx(-100.9, abs=0.5)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            units.thermal_noise_watts(0.0)


class TestTimeEnergy:
    def test_microseconds(self):
        assert units.microseconds(100.0) == pytest.approx(1e-4)

    def test_seconds_to_us_round_trip(self):
        assert units.seconds_to_us(units.microseconds(254.0)) == pytest.approx(254.0)

    def test_mbps(self):
        assert units.mbps(54.0) == pytest.approx(54e6)

    def test_microjoules(self):
        assert units.microjoules(2.77) == pytest.approx(2.77e-6)

    def test_joules_to_microjoules_round_trip(self):
        assert units.joules_to_microjoules(units.microjoules(5.0)) == pytest.approx(5.0)

    def test_millijoules(self):
        assert units.millijoules(10.4) == pytest.approx(10.4e-3)
