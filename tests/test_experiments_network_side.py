"""Experiment-driver tests for the network side: Figs 5-8, 14, 15, Table 1,
§8c. Small configurations of the exact benchmark drivers, asserting the
paper's qualitative claims."""

import pytest

from repro.core.config import Scheme
from repro.experiments.fig05_delay_sweep import measure_occupancy, run_fig05
from repro.experiments.fig06_traffic import (
    run_fig07,
    run_plt_for_scheme,
    run_tcp_for_scheme,
    run_udp_for_scheme,
)
from repro.experiments.fig08_fairness import measure_neighbor_throughput, run_fig08
from repro.experiments.fig14_homes import run_fig14
from repro.experiments.fig15_home_sensor import run_fig15
from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.experiments.table1_homes import run_table1
from repro.experiments.sec8c_multi_router import run_sec8c
from repro.errors import ConfigurationError


class TestFig05:
    def test_plateau_near_half_with_office_load(self):
        """Fig 5: ~50 % single-channel occupancy at the paper's operating
        point (100 us delay, threshold 5, busy office)."""
        occupancy = measure_occupancy(100.0, 5, duration_s=2.0)
        assert occupancy == pytest.approx(0.48, abs=0.07)

    def test_occupancy_flat_below_airtime(self):
        fast = measure_occupancy(50.0, 5, duration_s=2.0)
        nominal = measure_occupancy(100.0, 5, duration_s=2.0)
        assert fast == pytest.approx(nominal, abs=0.03)

    def test_occupancy_decays_at_large_delay(self):
        nominal = measure_occupancy(100.0, 5, duration_s=2.0)
        slow = measure_occupancy(1000.0, 5, duration_s=2.0)
        assert slow < 0.75 * nominal

    def test_threshold_one_loses_occupancy(self):
        """§3.2(i): thresholds below five drain the queue and lose airtime."""
        shallow = measure_occupancy(100.0, 1, duration_s=2.0)
        tuned = measure_occupancy(100.0, 5, duration_s=2.0)
        assert shallow < tuned

    def test_large_thresholds_equivalent(self):
        t50 = measure_occupancy(100.0, 50, duration_s=1.0)
        t100 = measure_occupancy(100.0, 100, duration_s=1.0)
        assert t50 == pytest.approx(t100, abs=0.04)

    def test_full_sweep_structure(self):
        result = run_fig05(thresholds=(1, 5), delays_us=(100, 400), duration_s=0.5)
        assert set(result.curves) == {1, 5}
        assert len(result.curves[5]) == 2
        assert result.occupancy_at(5, 100) > 0


UDP_KW = dict(rates_mbps=(5, 20, 40), copies=1, run_seconds=1.0, gap_seconds=0.2)


class TestFig06a:
    @pytest.fixture(scope="class")
    def results(self):
        return {
            scheme: run_udp_for_scheme(scheme, **UDP_KW)
            for scheme in (
                Scheme.BASELINE,
                Scheme.POWIFI,
                Scheme.NO_QUEUE,
                Scheme.BLIND_UDP,
            )
        }

    def test_powifi_matches_baseline(self, results):
        """Fig 6a: 'the client's iperf traffic achieves roughly the same
        rate as the baseline.'"""
        for rate in (5, 20):
            assert results[Scheme.POWIFI].throughput_by_rate[rate] == pytest.approx(
                results[Scheme.BASELINE].throughput_by_rate[rate], rel=0.1
            )

    def test_noqueue_roughly_halves(self, results):
        """Fig 6a: NoQueue 'results in roughly a halving' at saturation."""
        baseline = results[Scheme.BASELINE].throughput_by_rate[40]
        noqueue = results[Scheme.NO_QUEUE].throughput_by_rate[40]
        assert 0.35 * baseline < noqueue < 0.65 * baseline

    def test_blindudp_destroys_throughput(self, results):
        """Fig 6a: BlindUDP floors client throughput."""
        for rate in (5, 20, 40):
            assert results[Scheme.BLIND_UDP].throughput_by_rate[rate] < 2.0

    def test_baseline_tracks_offered_until_saturation(self, results):
        baseline = results[Scheme.BASELINE].throughput_by_rate
        assert baseline[5] == pytest.approx(5.0, rel=0.05)
        assert baseline[20] == pytest.approx(20.0, rel=0.1)
        assert baseline[40] < 30.0

    def test_powifi_occupancy_stays_high(self, results):
        """Fig 7a: mean cumulative occupancy near 100 % during UDP runs."""
        report = results[Scheme.POWIFI].occupancy
        assert report is not None
        assert 0.8 < report.mean_cumulative < 2.2


class TestFig06b:
    @pytest.fixture(scope="class")
    def results(self):
        kwargs = dict(runs=1, copies=1, run_seconds=1.5)
        return {
            scheme: run_tcp_for_scheme(scheme, **kwargs)
            for scheme in (
                Scheme.BASELINE,
                Scheme.POWIFI,
                Scheme.NO_QUEUE,
                Scheme.BLIND_UDP,
            )
        }

    def test_scheme_ordering(self, results):
        """Fig 6b's CDF ordering: baseline ~ powifi > noqueue >> blind."""
        baseline = results[Scheme.BASELINE].median_mbps
        powifi = results[Scheme.POWIFI].median_mbps
        noqueue = results[Scheme.NO_QUEUE].median_mbps
        blind = results[Scheme.BLIND_UDP].median_mbps
        assert powifi > 0.75 * baseline
        assert noqueue < 0.8 * baseline
        assert blind < 0.2 * baseline

    def test_noqueue_roughly_halves(self, results):
        baseline = results[Scheme.BASELINE].median_mbps
        noqueue = results[Scheme.NO_QUEUE].median_mbps
        assert 0.3 * baseline < noqueue < 0.75 * baseline


class TestFig06c:
    @pytest.fixture(scope="class")
    def results(self):
        kwargs = dict(sites=("google.com", "yahoo.com"), loads_per_site=1, page_scale=0.3)
        return {
            scheme: run_plt_for_scheme(scheme, **kwargs)
            for scheme in (
                Scheme.BASELINE,
                Scheme.POWIFI,
                Scheme.NO_QUEUE,
                Scheme.BLIND_UDP,
            )
        }

    def test_powifi_adds_small_delay(self, results):
        """Fig 6c: PoWiFi adds ~100 ms over baseline, NoQueue ~300 ms."""
        delta = results[Scheme.POWIFI].mean_plt_s - results[Scheme.BASELINE].mean_plt_s
        assert 0.0 < delta < 0.3

    def test_noqueue_slower_than_powifi(self, results):
        assert results[Scheme.NO_QUEUE].mean_plt_s > results[Scheme.POWIFI].mean_plt_s

    def test_blindudp_dominates_delay(self, results):
        assert (
            results[Scheme.BLIND_UDP].mean_plt_s
            > 2 * results[Scheme.BASELINE].mean_plt_s
        )

    def test_heavy_site_slower_than_light(self, results):
        plt = results[Scheme.BASELINE].plt_by_site
        assert plt["yahoo.com"] > plt["google.com"]


class TestFig07:
    def test_mean_cumulative_near_paper(self):
        """Fig 7: mean cumulative occupancy in the ~0.9-1.1 band the paper
        reports (97.6 / 100.9 / 87.6 %), with margin for the small run."""
        report = run_fig07(duration_s=3.0)
        assert 0.75 < report.mean_cumulative < 2.2

    def test_three_channels_reported(self):
        report = run_fig07(duration_s=2.0)
        assert set(report.per_channel) == {1, 6, 11}

    def test_cdf_samples_exist(self):
        report = run_fig07(duration_s=2.0)
        assert len(report.cumulative.cdf()) >= 3


class TestFig08:
    def test_powifi_beats_equal_share(self):
        """Fig 8's headline: PoWiFi gives neighbours better than their
        equal share at sub-54 rates."""
        for rate in (11.0, 24.0):
            powifi = measure_neighbor_throughput(Scheme.POWIFI, rate, duration_s=1.0)
            equal = measure_neighbor_throughput(
                Scheme.EQUAL_SHARE, rate, duration_s=1.0
            )
            assert powifi > equal

    def test_blindudp_crushes_neighbor(self):
        blind = measure_neighbor_throughput(Scheme.BLIND_UDP, 24.0, duration_s=1.0)
        powifi = measure_neighbor_throughput(Scheme.POWIFI, 24.0, duration_s=1.0)
        assert blind < 0.2 * powifi

    def test_degradation_worse_at_high_rates(self):
        """Fig 8: BlindUDP's damage grows with the neighbour's bit rate."""
        at_11 = measure_neighbor_throughput(Scheme.BLIND_UDP, 11.0, duration_s=1.0)
        at_54 = measure_neighbor_throughput(Scheme.BLIND_UDP, 54.0, duration_s=1.0)
        ideal_11, ideal_54 = 11.0, 54.0
        assert at_54 / ideal_54 < at_11 / ideal_11 + 0.05

    def test_full_sweep_api(self):
        result = run_fig08(neighbor_rates=(11.0, 54.0), duration_s=0.5)
        assert result.powifi_beats_equal_share(11.0)


class TestHomes:
    @pytest.fixture(scope="class")
    def study(self):
        return run_fig14(duration_s=24 * 3600.0)

    def test_table1_matches_paper(self):
        assert run_table1().matches_paper

    def test_mean_cumulative_range(self, study):
        """§6: mean cumulative occupancies in the 78-127 % range."""
        low, high = study.mean_cumulative_range
        assert 0.70 < low < 1.0
        assert 1.0 < high < 1.45

    def test_busiest_neighborhood_is_lowest(self, study):
        """Home 5 has 24 neighbouring APs and the lowest occupancy."""
        means = {h.profile.index: h.mean_cumulative for h in study.homes}
        assert means[5] == min(means.values())

    def test_quietest_neighborhood_is_highest(self, study):
        means = {h.profile.index: h.mean_cumulative for h in study.homes}
        assert means[2] == max(means.values())

    def test_cumulative_high_throughout(self, study):
        """§6: 'The cumulative occupancy is high over time in all our home
        deployments' — even the 10th percentile stays substantial."""
        for home in study.homes:
            assert home.cumulative.percentile(10) > 0.35

    def test_occupancy_varies_over_day(self, study):
        for home in study.homes:
            assert home.cumulative.percentile(90) - home.cumulative.percentile(10) > 0.1

    def test_fig15_all_homes_deliver_power(self, study):
        result = run_fig15(study)
        assert result.all_homes_deliver_power

    def test_fig15_rates_in_paper_axis(self, study):
        """Fig 15's x-axis spans 0-10 reads/s; medians sit well inside."""
        result = run_fig15(study)
        for index in result.samples_by_home:
            assert 0.1 < result.median(index) < 10.0

    def test_fig15_busy_home_slowest(self, study):
        result = run_fig15(study)
        medians = {i: result.median(i) for i in result.samples_by_home}
        assert medians[5] == min(medians.values())


class TestSec8c:
    def test_occupancy_stays_high_with_more_routers(self):
        study = run_sec8c(router_counts=(1, 2), duration_s=0.5)
        assert study.occupancy_stays_high

    def test_collisions_increase_with_router_count(self):
        study = run_sec8c(router_counts=(1, 3), duration_s=0.5)
        assert (
            study.by_count[3].collision_fraction
            >= study.by_count[1].collision_fraction
        )

    def test_aggregate_at_least_single_router(self):
        study = run_sec8c(router_counts=(1, 2), duration_s=0.5)
        assert study.aggregate_cumulative(2) >= 0.9 * study.aggregate_cumulative(1)


class TestRegistry:
    def test_all_paper_experiments_registered(self):
        for key in ("fig1", "fig5", "fig6a", "fig6b", "fig6c", "fig7", "fig8",
                    "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
                    "fig15", "table1", "sec8a", "sec8c"):
            assert key in EXPERIMENTS

    def test_resolution(self):
        driver = get_experiment("table1")
        assert driver().matches_paper

    def test_unknown_id_rejected(self):
        with pytest.raises(ConfigurationError):
            get_experiment("fig99")
