"""Seed-robustness: the paper's qualitative claims must hold across seeds,
not just at seed 0."""

import pytest

from repro.core.config import Scheme
from repro.experiments.fig05_delay_sweep import measure_occupancy
from repro.experiments.fig06_traffic import run_udp_for_scheme
from repro.experiments.fig08_fairness import measure_neighbor_throughput
from repro.experiments.fig14_homes import run_fig14

SEEDS = (1, 2, 3)


class TestSeedRobustness:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_fig5_plateau_stable(self, seed):
        occupancy = measure_occupancy(100.0, 5, duration_s=1.5, seed=seed)
        assert 0.40 < occupancy < 0.60

    @pytest.mark.parametrize("seed", SEEDS)
    def test_fig6a_powifi_tracks_baseline(self, seed):
        kwargs = dict(rates_mbps=(10,), copies=1, run_seconds=1.0, seed=seed)
        baseline = run_udp_for_scheme(Scheme.BASELINE, **kwargs)
        powifi = run_udp_for_scheme(Scheme.POWIFI, **kwargs)
        assert powifi.throughput_by_rate[10] == pytest.approx(
            baseline.throughput_by_rate[10], rel=0.15
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_fig8_fairness_ordering_stable(self, seed):
        powifi = measure_neighbor_throughput(
            Scheme.POWIFI, 24.0, duration_s=1.0, seed=seed
        )
        equal = measure_neighbor_throughput(
            Scheme.EQUAL_SHARE, 24.0, duration_s=1.0, seed=seed
        )
        assert powifi > 0.95 * equal

    @pytest.mark.parametrize("seed", SEEDS)
    def test_fig14_range_stable(self, seed):
        study = run_fig14(seed=seed, duration_s=6 * 3600.0)
        low, high = study.mean_cumulative_range
        assert 0.6 < low < 1.1
        assert 0.9 < high < 1.6
        # The AP-count ordering survives reseeding.
        means = {h.profile.index: h.mean_cumulative for h in study.homes}
        assert means[5] < means[2]
