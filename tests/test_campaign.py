"""Campaign manager robustness: journaled sweeps that survive ``kill -9``.

These tests pin the campaign subsystem's three contracts:

* **recovery** — the journal fold reconstructs exact progress after any
  hard kill: torn trailing lines are tolerated, duplicate and stale seqs
  are dropped, mid-file corruption quarantines the journal and recovery
  degrades to the result cache;
* **idempotence** — a resumed campaign re-executes only work that never
  finished, and its manifest is byte-identical to an uninterrupted
  equal-seed run's;
* **degradation** — a point that fails every attempt is quarantined and
  reported; the campaign still completes.

The SIGKILL case runs a real subprocess and delivers a real ``SIGKILL``
mid-campaign — no mocking of the crash itself.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.campaign import (
    CampaignJournal,
    fold_journal,
    load_campaign_spec,
    parse_campaign_spec,
    point_rows,
    quarantine_journal,
    render_rows,
    rows_to_csv,
    run_campaign,
    validate_campaign_data,
)
from repro.campaign.journal import load_journal
from repro.campaign.manager import build_manifest, write_manifest
from repro.errors import ConfigurationError
from repro.faults import FaultPlan, FaultSpec
from repro.obs import runtime as obs_runtime
from repro.runner.backoff import backoff_s

#: Three fast analytic points (no seed dimension): a 2-value occupancy
#: axis over fig12 plus axis-free fig9 — enough to show partial progress
#: without ballooning tier-1 wall clock.
SPEC_DATA = {
    "schema": 1,
    "campaign": "unit",
    "seeds": [0],
    "experiments": [
        {"experiment": "fig12", "axes": {"occupancy": [0.4, 0.8]}},
        {"experiment": "fig9"},
    ],
}


@pytest.fixture()
def spec():
    return parse_campaign_spec(json.loads(json.dumps(SPEC_DATA)))


@pytest.fixture()
def workdir(tmp_path):
    return tmp_path


def _run(spec, tmp, **kwargs):
    kwargs.setdefault("jobs", 1)
    kwargs.setdefault("cache_dir", str(tmp / "cache"))
    kwargs.setdefault("journal_path", tmp / "campaign.jsonl")
    return run_campaign(spec, **kwargs)


def _plan(*specs, seed=0):
    return FaultPlan(specs, seed=seed)


class TestSpecExpansion:
    def test_expansion_is_deterministic_and_content_addressed(self, spec):
        first = spec.expand("fp")
        second = spec.expand("fp")
        assert first == second
        assert [p.label for p in first] == [
            "fig12:occupancy=0.4",
            "fig12:occupancy=0.8",
            "fig9:all",
        ]
        assert len({p.key for p in first}) == 3
        # A different code fingerprint re-addresses every point.
        assert {p.key for p in spec.expand("other")}.isdisjoint(
            {p.key for p in first}
        )

    def test_seedless_drivers_collapse_the_replicate_dimension(self):
        data = dict(SPEC_DATA, seeds=[0, 1, 2])
        spec = parse_campaign_spec(data)
        # fig12/fig9 take no seed: still 3 points, not 9.
        assert len(spec.expand("fp")) == 3
        seeded = parse_campaign_spec(
            {
                "campaign": "s",
                "seeds": [0, 1],
                "experiments": [
                    {"experiment": "fig7", "axes": {"duration_s": [0.5]}}
                ],
            }
        )
        points = seeded.expand("fp")
        assert [p.seed for p in points] == [0, 1]
        assert [p.label for p in points] == [
            "fig7:duration_s=0.5#s0",
            "fig7:duration_s=0.5#s1",
        ]

    def test_digest_ignores_file_formatting(self, spec):
        reordered = parse_campaign_spec(
            {
                "seeds": [0],
                "campaign": "unit",
                "experiments": SPEC_DATA["experiments"],
            }
        )
        assert spec.digest() == reordered.digest()

    def test_validation_catches_the_lintable_mistakes(self):
        problems = validate_campaign_data(
            {
                "campaign": "bad",
                "seeds": [0, 0],
                "experiments": [
                    {"experiment": "nope"},
                    {"experiment": "fig12", "axes": {"occupanci": [0.5]}},
                    {"experiment": "fig9", "axes": {"seed": [1]}},
                ],
            }
        )
        messages = "\n".join(message for message, _needle in problems)
        assert "'seeds' contains duplicates" in messages
        assert "unknown experiment 'nope'" in messages
        assert "'occupanci' is not a keyword" in messages
        assert "axis 'seed' is not allowed" in messages

    def test_parse_raises_configuration_error(self):
        with pytest.raises(ConfigurationError, match="unknown experiment"):
            parse_campaign_spec(
                {"campaign": "x", "experiments": [{"experiment": "nope"}]}
            )


class TestJournalFold:
    def _journal(self, tmp):
        return CampaignJournal(tmp / "campaign.jsonl")

    def test_roundtrip_folds_terminals_leases_and_attempts(self, workdir):
        journal = self._journal(workdir)
        journal.append("campaign.open", campaign="j", generation=1)
        journal.append("point.lease", key="a", lease="g1-l1", attempt=1)
        journal.append("point.done", key="a", attempt=1)
        journal.append("point.lease", key="b", lease="g1-l2", attempt=1)
        journal.append("point.retry", key="b", attempt=1)
        journal.append("point.lease", key="b", lease="g1-l3", attempt=2)
        state = fold_journal(journal.path)
        assert state.exists and not state.corrupt and not state.torn_tail
        assert set(state.done) == {"a"}
        assert set(state.leases) == {"b"}  # a's lease cleared by its done
        assert state.attempts["b"] == 2
        assert state.last_seq == 6 and state.records == 6

    def test_torn_trailing_line_is_tolerated(self, workdir):
        journal = self._journal(workdir)
        journal.append("campaign.open", campaign="j", generation=1)
        journal.append("point.done", key="a", attempt=1)
        before = fold_journal(journal.path)
        # A kill -9 mid-append leaves a prefix of the line, no newline.
        with open(journal.path, "ab") as handle:
            handle.write(b'{"schema": 1, "seq": 3, "type": "poi')
        after = fold_journal(journal.path)
        assert after.torn_tail and not after.corrupt
        assert set(after.done) == set(before.done)
        assert after.last_seq == before.last_seq

    def test_duplicate_seqs_fold_once(self, workdir):
        journal = self._journal(workdir)
        journal.append("campaign.open", campaign="j", generation=1)
        done = journal.append("point.done", key="a", attempt=1)
        # Replayed delivery: the identical record appended again.
        from repro.obs.ioutil import append_line

        append_line(journal.path, json.dumps(done, sort_keys=True))
        state = fold_journal(journal.path)
        assert state.dropped == 1
        assert state.records == 2
        assert set(state.done) == {"a"}

    def test_stale_records_after_terminal_are_dropped(self, workdir):
        journal = self._journal(workdir)
        journal.append("campaign.open", campaign="j", generation=1)
        journal.append("point.done", key="a", attempt=1)
        journal.append("point.heartbeat", key="a", lease="g1-l1", attempt=1)
        journal.append("point.quarantined", key="a", attempts=2, error="late")
        state = fold_journal(journal.path)
        assert state.dropped == 2  # stale heartbeat + second terminal
        assert set(state.done) == {"a"} and not state.quarantined
        assert not state.leases

    def test_mid_file_corruption_quarantines_the_journal(self, workdir):
        journal = self._journal(workdir)
        journal.append("campaign.open", campaign="j", generation=1)
        journal.append("point.done", key="a", attempt=1)
        blob = journal.path.read_bytes().splitlines(keepends=True)
        mangled = blob[0][: len(blob[0]) // 2].rstrip(b"\n") + b"\n" + blob[1]
        journal.path.write_bytes(mangled)
        assert fold_journal(journal.path).corrupt
        state = load_journal(journal.path)
        assert state.quarantined_path is not None
        assert not journal.path.exists()
        moved = Path(state.quarantined_path)
        assert moved.parent.name == "quarantine" and moved.exists()
        # Recovery starts from scratch: nothing trusted from the old file.
        assert not state.done and state.last_seq == 0

    def test_quarantine_never_overwrites_earlier_quarantines(self, workdir):
        for _round in range(2):
            journal = self._journal(workdir)
            journal.append("campaign.open", campaign="j", generation=1)
            quarantine_journal(journal.path)
        names = sorted(p.name for p in (workdir / "quarantine").iterdir())
        assert names == ["campaign.jsonl.0", "campaign.jsonl.1"]


class TestRunCampaign:
    def test_completes_and_second_run_replays_from_cache(self, spec, workdir):
        first = _run(spec, workdir)
        assert first.ok and not first.quarantined
        assert first.executed == 3
        manifest_bytes = json.dumps(
            first.manifest, indent=2, sort_keys=True
        )
        second = _run(spec, workdir)
        assert second.ok
        assert second.executed == 0  # zero re-executed points
        assert all(o.cached or o.replayed for o in second.outcomes)
        assert (
            json.dumps(second.manifest, indent=2, sort_keys=True)
            == manifest_bytes
        )
        assert second.generations == 2

    def test_manifest_is_pure_no_walls_attempts_or_cache_flags(self, spec, workdir):
        result = _run(spec, workdir)
        payload = json.dumps(result.manifest)
        for forbidden in ('"wall_s"', '"attempts"', '"cached"', '"t_s"'):
            assert forbidden not in payload
        totals = result.manifest["totals"]
        assert totals == {"points": 3, "ok": 3, "quarantined": 0}

    def test_poisoned_point_is_quarantined_and_campaign_completes(
        self, spec, workdir
    ):
        plan = _plan(FaultSpec("campaign.point.poison", scope="fig9:*"))
        result = _run(spec, workdir, retries=1, fault_plan=plan)
        assert result.ok  # the acceptance contract: completes, not fails
        (quarantined,) = result.quarantined
        assert quarantined.point.experiment == "fig9"
        assert quarantined.attempts == 2  # poison re-arms on every retry
        assert "campaign.point.poison" in (quarantined.error or "")
        assert result.manifest["totals"] == {
            "points": 3,
            "ok": 2,
            "quarantined": 1,
        }
        reported = [
            p for p in result.manifest["points"] if p["status"] == "quarantined"
        ]
        assert [p["experiment"] for p in reported] == ["fig9"]

    def test_quarantined_point_is_not_retried_on_resume(self, spec, workdir):
        plan = _plan(FaultSpec("campaign.point.poison", scope="fig9:*"))
        first = _run(spec, workdir, retries=0, fault_plan=plan)
        assert len(first.quarantined) == 1
        resumed = _run(spec, workdir)
        assert resumed.executed == 0
        (replayed,) = resumed.quarantined
        assert replayed.replayed
        assert resumed.manifest["totals"]["quarantined"] == 1

    def test_expired_lease_is_retried_to_success(self, spec, workdir):
        plan = _plan(FaultSpec("campaign.lease.expire", scope="fig9:*"))
        result = _run(spec, workdir, retries=1, fault_plan=plan)
        assert result.ok and not result.quarantined
        fig9 = next(
            o for o in result.outcomes if o.point.experiment == "fig9"
        )
        assert fig9.attempts == 2
        state = fold_journal(workdir / "campaign.jsonl")
        assert state.attempts[fig9.point.key] == 2

    def test_torn_journal_fault_then_resume_recovers_from_cache(
        self, spec, workdir
    ):
        baseline = _run(spec, workdir, journal_path=workdir / "clean.jsonl")
        plan = _plan(FaultSpec("campaign.journal.corrupt", scope="fig12:*"))
        torn = _run(
            spec,
            workdir,
            fault_plan=plan,
            journal_path=workdir / "torn.jsonl",
        )
        assert torn.ok  # the torn append hurts the journal, not the run
        # The glued fragment makes the fold see mid-file corruption...
        assert fold_journal(workdir / "torn.jsonl").corrupt
        resumed = _run(spec, workdir, journal_path=workdir / "torn.jsonl")
        # ...so resume quarantines the journal and replays from cache.
        assert resumed.journal_quarantined is not None
        assert resumed.executed == 0
        assert json.dumps(resumed.manifest, sort_keys=True) == json.dumps(
            baseline.manifest, sort_keys=True
        )

    def test_fresh_moves_the_old_journal_aside(self, spec, workdir):
        _run(spec, workdir)
        result = _run(spec, workdir, resume=False)
        assert result.generations == 1
        assert (workdir / "quarantine" / "campaign.jsonl.0").exists()
        # Fresh generation, but the cache still made every point free.
        assert result.executed == 0

    def test_pool_mode_matches_in_process_manifest(self, spec, workdir):
        solo = _run(spec, workdir, journal_path=workdir / "solo.jsonl")
        pooled = _run(
            spec,
            workdir,
            jobs=2,
            cache_dir=str(workdir / "cache2"),
            journal_path=workdir / "pool.jsonl",
        )
        assert json.dumps(pooled.manifest, sort_keys=True) == json.dumps(
            solo.manifest, sort_keys=True
        )


#: Self-SIGKILLs after the first point's terminal journal append lands —
#: the parent asserts the kill was real (returncode -9) and resumes.
_SIGKILL_SCRIPT = """
import json, os, signal, sys
from repro.campaign import load_campaign_spec, run_campaign

spec = load_campaign_spec(sys.argv[1])

def progress(line):
    if line.startswith("[point"):
        os.kill(os.getpid(), signal.SIGKILL)

run_campaign(
    spec,
    jobs=1,
    cache_dir=sys.argv[2],
    journal_path=sys.argv[3],
    progress=progress,
)
"""


class TestSigkillResume:
    def test_sigkill_mid_campaign_resumes_byte_identical(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(SPEC_DATA))
        cache_dir = tmp_path / "cache"
        journal_path = tmp_path / "campaign.jsonl"
        env = dict(os.environ)
        src = Path(__file__).resolve().parent.parent / "src"
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        proc = subprocess.run(
            [sys.executable, "-c", _SIGKILL_SCRIPT, str(spec_path),
             str(cache_dir), str(journal_path)],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        survivors = fold_journal(journal_path)
        assert survivors.exists
        assert 1 <= len(survivors.done) < 3  # partial progress, real kill

        spec = load_campaign_spec(spec_path)
        resumed = run_campaign(
            spec, jobs=1, cache_dir=str(cache_dir), journal_path=journal_path
        )
        assert resumed.ok
        # Every point the journal proved done replayed without executing.
        assert resumed.executed == 3 - len(survivors.done)
        for outcome in resumed.outcomes:
            if outcome.point.key in survivors.done:
                assert outcome.cached and outcome.replayed

        # The invariant the chaos CI job pins: byte-identical manifests.
        uninterrupted = run_campaign(
            spec,
            jobs=1,
            cache_dir=str(tmp_path / "cache_clean"),
            journal_path=tmp_path / "clean.jsonl",
        )
        resumed_path = write_manifest(tmp_path / "resumed.json", resumed.manifest)
        clean_path = write_manifest(
            tmp_path / "clean.json", uninterrupted.manifest
        )
        assert resumed_path.read_bytes() == clean_path.read_bytes()


class TestBackoff:
    def test_backoff_is_deterministic_and_bounded(self):
        assert backoff_s(0, "fig9:all", 1) == backoff_s(0, "fig9:all", 1)
        assert backoff_s(0, "fig9:all", 1) != backoff_s(0, "fig9:all", 2)
        assert backoff_s(0, "fig9:all", 1) != backoff_s(1, "fig9:all", 1)
        for attempt in range(1, 8):
            window = min(2.0, 0.05 * 2 ** (attempt - 1))
            delay = backoff_s(0, "x", attempt)
            assert window * 0.5 <= delay <= window

    def test_runner_retry_observes_backoff_metric(self, tmp_path):
        from repro.runner import run_all

        obs_runtime.configure(enabled=True)
        registry = obs_runtime.get_registry()
        plan = _plan(FaultSpec("worker.raise", scope="fig9:*"))
        result = run_all(
            ids=["fig9"],
            jobs=1,
            cache_dir=str(tmp_path / "cache"),
            retries=1,
            fault_plan=plan,
        )
        assert result.ok
        histogram = registry.histogram(
            "runner.retry.backoff_s", experiment="fig9"
        )
        assert histogram.count == 1
        assert 0.0 < histogram.sum <= 2.0
        obs_runtime.configure(enabled=True)  # leave a clean registry behind


class TestResultsQuery:
    def test_rows_flatten_axes_domain_and_slo(self, spec, workdir):
        result = _run(spec, workdir)
        rows = point_rows(result.manifest)
        assert len(rows) == 3
        by_point = {row["point"]: row for row in rows}
        assert by_point["fig12:occupancy=0.4"]["axis.occupancy"] == 0.4
        fig12 = by_point["fig12:occupancy=0.4"]
        assert any(key.startswith("camera.") for key in fig12)
        assert "slo.ok" in fig12 or "slo.violated" in fig12
        table = render_rows(rows)
        assert "axis.occupancy" in table.splitlines()[0]
        csv_text = rows_to_csv(rows)
        assert csv_text.splitlines()[0].startswith("campaign,point,experiment")
        assert len(csv_text.splitlines()) == 4

    def test_experiment_filter(self, spec, workdir):
        result = _run(spec, workdir)
        rows = point_rows(result.manifest, experiment="fig9")
        assert [row["experiment"] for row in rows] == ["fig9"]

    def test_render_rows_empty(self):
        assert render_rows([]) == "(no points)"


class TestCampaignCli:
    def _write_spec(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(SPEC_DATA))
        return spec_path

    def test_run_status_results_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = self._write_spec(tmp_path)
        report = tmp_path / "campaign_manifest.json"
        journal = tmp_path / "campaign.jsonl"
        code = main(
            [
                "campaign", "run",
                "--spec", str(spec_path),
                "--jobs", "1",
                "--report", str(report),
                "--journal", str(journal),
                "--cache-dir", str(tmp_path / "cache"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "3/3 ok" in out
        assert report.exists() and journal.exists()

        code = main(
            [
                "campaign", "status",
                "--journal", str(journal),
                "--spec", str(spec_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "3 done" in out and "0/3 pending" in out

        code = main(
            [
                "campaign", "results",
                "--input", str(report),
                "--format", "csv",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("campaign,point,experiment")

    def test_bad_spec_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text(
            json.dumps(
                {"campaign": "x", "experiments": [{"experiment": "nope"}]}
            )
        )
        code = main(["campaign", "run", "--spec", str(bad)])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_resume_fresh_conflict_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = self._write_spec(tmp_path)
        code = main(
            [
                "campaign", "run",
                "--spec", str(spec_path),
                "--resume", "--fresh",
            ]
        )
        assert code == 2
        assert "conflict" in capsys.readouterr().err

    def test_status_without_journal_exits_1(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            ["campaign", "status", "--journal", str(tmp_path / "none.jsonl")]
        )
        assert code == 1
        assert "no journal" in capsys.readouterr().out

    def test_usage_line_for_unknown_verb(self, capsys):
        from repro.cli import main

        assert main(["campaign", "bogus"]) == 2
        assert "usage: repro campaign" in capsys.readouterr().err


class TestWatchEmptyStream:
    def test_render_board_without_events_explains_itself(self):
        from repro.obs.live import WatchState, render_board, replay

        board = render_board(WatchState())
        assert "waiting for events" in board
        assert "?" not in board.replace("here?", "")  # no board of "?"s
        # One real record flips it to the normal board.
        state = replay(
            [{"type": "run.start", "seq": 1, "t_s": 0.0, "seed": 7, "jobs": 2}]
        )
        assert "seed=7" in render_board(state)


class TestLintPW007:
    def test_campaign_spec_problems_become_findings(self):
        from repro.lint.checks import check_campaign_spec_file

        source = json.dumps(
            {
                "campaign": "bad",
                "seeds": [0],
                "experiments": [
                    {"experiment": "nope"},
                    {"experiment": "fig12", "axes": {"occupanci": [0.5]}},
                ],
            },
            indent=2,
        )
        findings = check_campaign_spec_file("campaigns/bad.json", source)
        assert findings
        assert all(f.code == "PW007" for f in findings)
        messages = "\n".join(f.message for f in findings)
        assert "unknown experiment 'nope'" in messages
        assert "'occupanci' is not a keyword" in messages
        lines = {f.line for f in findings}
        assert lines != {1}  # needles located real source lines

    def test_valid_spec_and_invalid_json(self):
        from repro.lint.checks import check_campaign_spec_file

        assert (
            check_campaign_spec_file(
                "campaigns/ok.json", json.dumps(SPEC_DATA)
            )
            == []
        )
        (finding,) = check_campaign_spec_file("campaigns/broken.json", "{oops")
        assert finding.code == "PW007"
        assert "not valid JSON" in finding.message

    def test_lint_paths_routes_campaigns_and_slos_dirs(self, tmp_path):
        from repro.lint.config import LintConfig
        from repro.lint.engine import lint_paths

        campaigns = tmp_path / "campaigns"
        campaigns.mkdir()
        (campaigns / "bad.json").write_text(
            json.dumps(
                {"campaign": "x", "experiments": [{"experiment": "nope"}]}
            )
        )
        slos = tmp_path / "slos"
        slos.mkdir()
        (slos / "bad.json").write_text(
            json.dumps({"objectives": [{"id": "Not Dotted"}]})
        )
        findings = lint_paths(
            [str(tmp_path)], config=LintConfig(), use_baseline=False
        )
        codes = sorted(f.code for f in findings)
        assert codes == ["PW006", "PW007"]

    def test_explicit_file_is_sniffed_by_campaign_key(self, tmp_path):
        from repro.lint.config import LintConfig
        from repro.lint.engine import lint_paths

        loose = tmp_path / "sweep.json"
        loose.write_text(
            json.dumps(
                {"campaign": "x", "experiments": [{"experiment": "nope"}]}
            )
        )
        findings = lint_paths(
            [str(loose)], config=LintConfig(), use_baseline=False
        )
        assert [f.code for f in findings] == ["PW007"]

    def test_disable_gates_the_rule(self, tmp_path):
        from repro.lint.config import LintConfig
        from repro.lint.engine import lint_paths

        campaigns = tmp_path / "campaigns"
        campaigns.mkdir()
        (campaigns / "bad.json").write_text(
            json.dumps(
                {"campaign": "x", "experiments": [{"experiment": "nope"}]}
            )
        )
        findings = lint_paths(
            [str(tmp_path)],
            config=LintConfig(disable=("PW007",)),
            use_baseline=False,
        )
        assert findings == []
