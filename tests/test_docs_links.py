"""Every intra-repo markdown link must resolve (mirrors the CI docs job)."""

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tools"))

import check_md_links  # noqa: E402


def test_all_repo_markdown_links_resolve():
    files = check_md_links.default_files(ROOT)
    assert any(path.name == "README.md" for path in files)
    assert any(path.name == "running.md" for path in files)
    problems = check_md_links.broken_links(files)
    assert not problems, "\n".join(problems)


def test_checker_sees_a_real_link_population():
    files = check_md_links.default_files(ROOT)
    links = sum(1 for path in files for _ in check_md_links.iter_links(path))
    assert links >= 10, "link checker is scanning too little to be meaningful"


def test_checker_catches_a_broken_link(tmp_path):
    page = tmp_path / "page.md"
    page.write_text("see [missing](does_not_exist.md) and [ok](page.md)\n")
    problems = check_md_links.broken_links([page])
    assert len(problems) == 1 and "does_not_exist.md" in problems[0]


def test_checker_skips_code_blocks_and_external_links(tmp_path):
    page = tmp_path / "page.md"
    page.write_text(
        "[ext](https://example.com) [anchor](#section)\n"
        "```\n[fake](inside_code_block.md)\n```\n"
    )
    assert check_md_links.broken_links([page]) == []
