"""Extended property-based tests: pcap containers, matching physics,
occupancy accounting, and the harvester chain."""

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import empirical_cdf, percentile
from repro.harvester.matching import LMatchingNetwork, RectifierImpedanceModel
from repro.harvester.multiband import BandInput, MultiBandHarvester
from repro.packets.control import AckFrame, CtsFrame, RtsFrame
from repro.packets.dot11 import MacAddress
from repro.packets.pcap import PcapReader, PcapWriter

macs = st.binary(min_size=6, max_size=6).map(MacAddress)
durations = st.integers(0, 0xFFFF)


class TestPcapProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1e6),
                st.binary(min_size=0, max_size=256),
            ),
            max_size=30,
        )
    )
    def test_any_record_sequence_round_trips(self, records):
        ordered = sorted(records, key=lambda r: r[0])
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        for timestamp, data in ordered:
            writer.write(timestamp, data)
        writer.close()
        parsed = PcapReader(buffer.getvalue()).read_all()
        assert len(parsed) == len(ordered)
        for (timestamp, data), record in zip(ordered, parsed):
            assert record.data == data
            assert abs(record.timestamp - timestamp) < 1e-5

    @given(st.binary(min_size=0, max_size=64), st.integers(1, 32))
    def test_snaplen_never_grows_data(self, data, snaplen):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer, snaplen=snaplen)
        writer.write(0.0, data)
        writer.close()
        (record,) = PcapReader(buffer.getvalue()).read_all()
        assert len(record.data) == min(len(data), snaplen)
        assert record.original_length == len(data)


class TestControlFrameProperties:
    @given(macs, durations)
    def test_ack_round_trip(self, mac, duration):
        frame = AckFrame(receiver=mac, duration_us=duration)
        assert AckFrame.decode(frame.encode()) == frame

    @given(macs, macs, durations)
    def test_rts_round_trip(self, ra, ta, duration):
        frame = RtsFrame(receiver=ra, transmitter=ta, duration_us=duration)
        assert RtsFrame.decode(frame.encode()) == frame

    @given(macs, durations)
    def test_cts_round_trip(self, mac, duration):
        frame = CtsFrame(receiver=mac, duration_us=duration)
        assert CtsFrame.decode(frame.encode()) == frame


class TestMatchingPhysics:
    @given(
        st.floats(min_value=50.0, max_value=3000.0),
        st.floats(min_value=0.05e-12, max_value=2e-12),
        st.floats(min_value=1e-9, max_value=50e-9),
        st.floats(min_value=0.3e-12, max_value=5e-12),
        st.floats(min_value=0.8e9, max_value=6e9),
    )
    @settings(max_examples=100)
    def test_passive_network_never_reflects_more_than_incident(
        self, rp, cp, inductance, capacitance, frequency
    ):
        """|Γ| <= 1 for any passive RLC values: energy conservation."""
        network = LMatchingNetwork(
            inductance_h=inductance,
            capacitance_f=capacitance,
            rectifier=RectifierImpedanceModel(rp, rp * 2, cp),
        )
        gamma = abs(network.reflection_coefficient(frequency))
        assert gamma <= 1.0 + 1e-9
        assert 0.0 <= network.delivered_fraction(frequency) <= 1.0


class TestMultibandProperties:
    @given(
        st.floats(min_value=-25.0, max_value=5.0),
        st.floats(min_value=-25.0, max_value=5.0),
    )
    @settings(max_examples=40)
    def test_band_outputs_add(self, wifi_dbm, uhf_dbm):
        harvester = MultiBandHarvester()
        wifi = harvester.dc_output_power_w([BandInput(2.437e9, wifi_dbm)])
        uhf = harvester.dc_output_power_w([BandInput(915e6, uhf_dbm)])
        both = harvester.dc_output_power_w(
            [BandInput(2.437e9, wifi_dbm), BandInput(915e6, uhf_dbm)]
        )
        assert abs(both - (wifi + uhf)) < 1e-12


class TestAnalysisProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
    def test_percentiles_monotone(self, samples):
        p10 = percentile(samples, 10)
        p50 = percentile(samples, 50)
        p90 = percentile(samples, 90)
        assert p10 <= p50 <= p90

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
    def test_cdf_fractions_cover_unit_interval(self, samples):
        cdf = empirical_cdf(samples)
        fractions = [f for _, f in cdf]
        assert fractions[0] > 0
        assert abs(fractions[-1] - 1.0) < 1e-12
        assert fractions == sorted(fractions)

    @given(st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=1, max_size=100))
    def test_percentile_bounded_by_extremes(self, samples):
        for q in (0, 25, 50, 75, 100):
            assert min(samples) <= percentile(samples, q) <= max(samples)
