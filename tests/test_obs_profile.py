"""Attribution profiler: engine attribution, rows, determinism, flame output.

Pins the profiler's contract: every dispatched kind gets a component and a
sim-time window, attribution (minus the host-dependent wall columns) is
byte-identical at equal seed, collapsed stacks follow the
flamegraph.pl/speedscope grammar, and ``--no-obs`` leaves no attribution
state anywhere.
"""

import json

import pytest

from repro import quickstart_powifi
from repro.errors import ObservabilityError
from repro.obs import runtime as obs_runtime
from repro.obs.profile import (
    KindRow,
    aggregate_rows,
    attributed_wall_s,
    collapse_stacks,
    coverage,
    deterministic_records,
    kind_baselines,
    render_attribution,
    rows_from_engine,
    rows_from_manifest,
    rows_from_metrics_jsonl,
    sort_rows,
    write_flame,
)
from repro.sim.engine import Simulator, _component_of


class _Widget:
    def poke(self) -> None:
        pass


def _free_function() -> None:
    pass


class TestComponentResolution:
    def test_bound_method_resolves_to_owner_class(self):
        widget = _Widget()
        assert _component_of(widget.poke) == f"{__name__}._Widget"

    def test_free_function_resolves_to_module(self):
        assert _component_of(_free_function) == __name__

    def test_partial_unwraps_to_inner_callable(self):
        from functools import partial

        widget = _Widget()
        assert _component_of(partial(widget.poke)) == f"{__name__}._Widget"

    def test_lambda_never_raises(self):
        assert isinstance(_component_of(lambda: None), str)


class TestEngineAttribution:
    def setup_method(self):
        obs_runtime.configure(enabled=True)

    def teardown_method(self):
        obs_runtime.configure(enabled=True)

    def test_stats_carry_components_and_sim_bounds(self):
        sim = Simulator(observe=True)
        widget = _Widget()
        sim.schedule(0.25, widget.poke, name="poke")
        sim.schedule(0.75, widget.poke, name="poke")
        sim.schedule(0.5, _free_function, name="free")
        sim.run()
        stats = sim.stats
        assert stats.callback_components["poke"] == f"{__name__}._Widget"
        assert stats.callback_components["free"] == __name__
        assert stats.callback_sim_bounds["poke"] == [0.25, 0.75]
        assert stats.callback_sim_bounds["free"] == [0.5, 0.5]
        as_dict = stats.to_dict()
        assert as_dict["callback_components"]["poke"] == f"{__name__}._Widget"
        json.dumps(as_dict)

    def test_runtime_aggregate_merges_bounds_across_simulators(self):
        for start in (0.1, 0.9):
            sim = Simulator()
            sim.schedule(start, _free_function, name="tick")
            sim.run()
        merged = obs_runtime.aggregate_engine_stats()
        assert merged["callback_sim_bounds"]["tick"] == [0.1, 0.9]
        assert merged["callback_components"]["tick"] == __name__

    def test_no_obs_keeps_no_attribution(self):
        obs_runtime.configure(enabled=False)
        quickstart_powifi(duration_s=0.1, seed=0)
        merged = obs_runtime.aggregate_engine_stats()
        assert merged["simulators"] == 0
        assert merged["callback_counts"] == {}
        assert rows_from_engine(merged) == []


class TestRows:
    def test_rows_from_engine_sorted_and_tolerant_of_legacy(self):
        legacy = {"callback_counts": {"b": 2, "a": 1}, "callback_wall_s": {"a": 0.5}}
        rows = rows_from_engine(legacy, experiment="fig5", part="all")
        assert [row.kind for row in rows] == ["a", "b"]
        assert rows[0].component == "" and rows[0].sim_first_s is None
        assert rows[0].wall_s == 0.5 and rows[1].wall_s == 0.0
        assert rows[0].experiment == "fig5"

    def test_aggregate_merges_and_widens_bounds(self):
        rows = [
            KindRow("tick", "m.C", 2, 0.1, 0.0, 1.0, "fig5", "t=1"),
            KindRow("tick", "m.C", 3, 0.2, 0.5, 4.0, "fig5", "t=5"),
        ]
        merged = aggregate_rows(rows)
        assert len(merged) == 1
        row = merged[0]
        assert row.count == 5 and row.wall_s == pytest.approx(0.3)
        assert (row.sim_first_s, row.sim_last_s) == (0.0, 4.0)
        assert row.experiment == "fig5" and row.part == ""  # parts differed
        by_part = aggregate_rows(rows, by_part=True)
        assert len(by_part) == 2

    def test_sort_rows_orders_and_validates(self):
        rows = [KindRow("a", "", 1, 0.5), KindRow("b", "", 9, 0.1)]
        assert [r.kind for r in sort_rows(rows, "wall")] == ["a", "b"]
        assert [r.kind for r in sort_rows(rows, "count")] == ["b", "a"]
        with pytest.raises(ObservabilityError, match="unknown profile sort"):
            sort_rows(rows, "vibes")

    def test_coverage_fraction(self):
        rows = [KindRow("a", "", 1, 1.5), KindRow("b", "", 1, 0.5)]
        assert attributed_wall_s(rows) == pytest.approx(2.0)
        assert coverage(rows, 4.0) == pytest.approx(0.5)
        assert coverage(rows, 0.0) == 0.0


class TestDeterminism:
    def setup_method(self):
        obs_runtime.configure(enabled=True)

    def teardown_method(self):
        obs_runtime.configure(enabled=True)

    def _attribution_bytes(self) -> bytes:
        obs_runtime.configure(enabled=True)
        quickstart_powifi(duration_s=0.2, seed=7)
        rows = rows_from_engine(
            obs_runtime.aggregate_engine_stats(), experiment="quickstart", part="all"
        )
        assert rows, "quickstart must dispatch simulator events"
        return json.dumps(deterministic_records(rows), sort_keys=True).encode()

    def test_equal_seed_gives_byte_identical_attribution(self):
        assert self._attribution_bytes() == self._attribution_bytes()

    def test_deterministic_records_exclude_wall(self):
        record = deterministic_records([KindRow("a", "m", 1, 123.456, 0.0, 1.0)])[0]
        assert "wall_s" not in record
        assert record["count"] == 1 and record["kind"] == "a"


class TestCollapsedStacks:
    def test_format_and_sanitisation(self):
        rows = [
            KindRow("tx done", "pkg.Mod;ule", 10, 0.002, 0.0, 1.0, "fig5", "t=1"),
            KindRow("cheap", "pkg.C", 5, 0.0, None, None, "fig5", "t=1"),
            KindRow("never", "pkg.C", 0, 0.0),
        ]
        lines = collapse_stacks(rows)
        assert len(lines) == 2  # zero-count rows are skipped
        for line in lines:
            stack, _, value = line.rpartition(" ")
            frames = stack.split(";")
            assert len(frames) == 4 and all(frames), line
            assert int(value) >= 1
        assert "fig5;t=1;pkg.Mod:ule;tx_done 2000" in lines

    def test_write_flame_roundtrip(self, tmp_path):
        path = tmp_path / "flame.txt"
        count = write_flame([KindRow("a", "m.C", 1, 0.001, 0.0, 1.0, "e", "p")], path)
        assert count == 1
        assert path.read_text() == "e;p;m.C;a 1000\n"


class TestRenderAndBaselines:
    def test_render_attribution_table(self):
        rows = [
            KindRow("hot", "m.Hot", 100, 1.8, 0.0, 5.0, "fig7", "all"),
            KindRow("cold", "m.Cold", 10, 0.1, 0.0, 5.0, "fig7", "all"),
        ]
        text = render_attribution(rows, total_wall_s=2.0, top=1)
        assert "hot" in text and "m.Hot" in text
        assert "cold" not in text.splitlines()[1]
        assert "... 1 more kind(s)" in text
        assert "attributed 1.900s of 2.000s measured (95.0%)" in text

    def test_kind_baselines_fold_parts(self):
        rows = [
            KindRow("tick", "m.C", 2, 0.1, 0.0, 1.0, "fig5", "t=1"),
            KindRow("tick", "m.C", 3, 0.2, 0.0, 1.0, "fig5", "t=5"),
            KindRow("tock", "m.D", 1, 0.05, 0.0, 1.0, "fig8", "all"),
        ]
        baselines = kind_baselines(rows)
        assert list(baselines) == ["tick", "tock"]
        assert baselines["tick"] == {
            "component": "m.C",
            "count": 5,
            "wall_s": pytest.approx(0.3),
        }


def make_profiled_manifest(wall=0.5, count=100):
    """A minimal v4 manifest whose single part carries a profile section."""
    return {
        "schema": 4,
        "generated_unix_s": 1700000000.0,
        "seed": 0,
        "jobs": 1,
        "code_fingerprint": "feed" * 10,
        "cache": {"enabled": False},
        "totals": {"experiments": 1, "wall_s": wall},
        "experiments": [
            {
                "id": "fig7",
                "runtime_class": "fast",
                "seed": 0,
                "cache_hit": False,
                "duration_s": wall,
                "shape_ok": True,
                "shape_detail": "",
                "result_sha256": "c" * 64,
                "error": None,
                "parts": [
                    {
                        "part": "all",
                        "key": "0" * 64,
                        "cache_hit": False,
                        "duration_s": wall,
                        "engine": {
                            "simulators": 1,
                            "dispatched": count,
                            "cancelled": 0,
                            "heap_high_watermark": 5,
                            "profile": {
                                "tick": {
                                    "component": "m.C",
                                    "count": count,
                                    "wall_s": wall * 0.9,
                                    "sim_first_s": 0.0,
                                    "sim_last_s": 5.0,
                                }
                            },
                        },
                        "metrics": {"records": 0, "counter_totals": {}},
                    }
                ],
            }
        ],
    }


class TestManifestAndHistoryIntegration:
    def test_rows_from_manifest(self):
        rows = rows_from_manifest(make_profiled_manifest())
        assert len(rows) == 1
        row = rows[0]
        assert (row.kind, row.component, row.experiment, row.part) == (
            "tick",
            "m.C",
            "fig7",
            "all",
        )
        assert rows_from_manifest({"experiments": []}) == []

    def test_history_record_carries_kind_baselines(self):
        from repro.obs.history import build_history_record

        record = build_history_record(make_profiled_manifest())
        assert record["kinds"]["tick"]["count"] == 100
        assert record["kinds"]["tick"]["component"] == "m.C"
        # Pre-v4 manifests (no profile sections) degrade to empty kinds.
        bare = make_profiled_manifest()
        del bare["experiments"][0]["parts"][0]["engine"]["profile"]
        assert build_history_record(bare)["kinds"] == {}

    def test_compare_names_the_regressed_kind_without_failing(self):
        from repro.obs.compare import compare_runs, render_compare
        from repro.obs.history import build_history_record

        base = build_history_record(make_profiled_manifest(wall=2.0, count=100))
        slow = build_history_record(make_profiled_manifest(wall=4.0, count=150))
        # Equalise whole-run walls so only the kind delta is in play:
        # attribution is advisory and must not flip the verdict alone.
        for exp in slow["experiments"].values():
            exp["wall_s"] = 2.0
        report = compare_runs(base, slow)
        assert report["kind_regressions"] == ["tick"]
        assert report["kind_deltas"][0]["delta_count"] == 50
        assert report["regressed"] is False
        assert "kind hot-spot" in render_compare(report)

    def test_run_manifest_parts_carry_profile(self):
        from repro.runner import run_all
        from repro.runner.manifest import build_manifest

        obs_runtime.configure(enabled=True)
        result = run_all(ids=["fig14"], jobs=1, use_cache=False)
        manifest = build_manifest(result)
        for entry in manifest["experiments"]:
            for part in entry["parts"]:
                assert "profile" in part["engine"]
        obs_runtime.configure(enabled=True)


class TestMetricsJsonlRows:
    def test_rows_from_metrics_jsonl(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        engine = {
            "type": "engine",
            "callback_counts": {"tick": 3},
            "callback_wall_s": {"tick": 0.1},
            "callback_components": {"tick": "m.C"},
            "callback_sim_bounds": {"tick": [0.0, 2.0]},
        }
        path.write_text(
            json.dumps({"type": "counter", "name": "x", "value": 1})
            + "\n"
            + json.dumps(engine)
            + "\n"
        )
        rows = rows_from_metrics_jsonl(path)
        assert len(rows) == 1 and rows[0].count == 3
        path.write_text("not json\n")
        with pytest.raises(ObservabilityError, match="malformed metrics record"):
            rows_from_metrics_jsonl(path)


class TestProfileCli:
    def test_profile_manifest_input(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "run_manifest.json"
        path.write_text(json.dumps(make_profiled_manifest()))
        flame = tmp_path / "flame.txt"
        code = main(["profile", "--input", str(path), "--flame", str(flame)])
        assert code == 0
        out = capsys.readouterr().out
        assert "== profile:" in out and "tick" in out and "m.C" in out
        assert flame.read_text().startswith("fig7;all;m.C;tick ")

    def test_profile_requires_exactly_one_source(self, capsys):
        from repro.cli import main

        assert main(["profile"]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_profile_rejects_no_obs(self, capsys):
        from repro.cli import main

        assert main(["profile", "fig7", "--no-obs"]) == 2
        assert "requires observability" in capsys.readouterr().err

    def test_metrics_triage_from_input(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "run_metrics.jsonl"
        engine = {
            "type": "engine",
            "callback_counts": {"tick": 3, "tock": 1},
            "callback_wall_s": {"tick": 0.1, "tock": 0.4},
            "callback_components": {"tick": "m.C", "tock": "m.D"},
            "callback_sim_bounds": {},
        }
        path.write_text(json.dumps(engine) + "\n")
        assert main(["metrics", "--input", str(path), "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert "metrics triage" in out
        assert "tock" in out  # wall-sorted: tock is the hot kind
        assert (
            main(["metrics", "--input", str(path), "--top", "1", "--sort", "count"])
            == 0
        )
        assert "tick" in capsys.readouterr().out
