"""Duty-cycle simulator tests: the charge/boot/operate cycle of §5.1."""

import pytest

from repro.errors import ConfigurationError
from repro.harvester.harvester import battery_free_harvester
from repro.harvester.storage import Capacitor
from repro.rf.link import LinkBudget, Transmitter
from repro.sensors.duty_cycle import (
    BOOT_VOLTAGE_V,
    BROWNOUT_VOLTAGE_V,
    DutyCycleSimulator,
)
from repro.sensors.mcu import TEMPERATURE_READ_ENERGY_J


@pytest.fixture
def link():
    return LinkBudget(Transmitter(tx_power_dbm=30.0))


def simulator_at(link, feet, **kwargs):
    return DutyCycleSimulator(
        battery_free_harvester(),
        link.received_power_dbm_at_feet(feet),
        TEMPERATURE_READ_ENERGY_J,
        **kwargs,
    )


class TestDutyCycle:
    def test_operations_happen_in_range(self, link):
        result = simulator_at(link, 10.0).run_constant(30.0, 0.95)
        assert result.count > 10

    def test_no_operations_out_of_range(self, link):
        result = simulator_at(link, 40.0).run_constant(30.0, 0.95)
        assert result.count == 0

    def test_rate_decreases_with_distance(self, link):
        near = simulator_at(link, 5.0).run_constant(20.0, 0.95)
        far = simulator_at(link, 12.0).run_constant(20.0, 0.95)
        assert near.mean_rate_hz > far.mean_rate_hz

    def test_matches_analytic_rate_order_of_magnitude(self, link):
        """The duty-cycle path and the analytic §5.1 energy budget must
        agree within a small factor (storage and boot overheads differ)."""
        from repro.sensors.temperature import TemperatureSensor

        result = simulator_at(link, 10.0).run_constant(60.0, 0.913)
        analytic = TemperatureSensor().evaluate_at(link, 10.0).update_rate_hz
        assert 0.3 * analytic < result.mean_rate_hz < 3.0 * analytic

    def test_first_boot_takes_cold_start_time(self, link):
        result = simulator_at(link, 10.0).run_constant(30.0, 0.95)
        assert result.operations[0].time_s > 1.0  # storage must charge first

    def test_voltage_never_below_brownout_after_operation(self, link):
        result = simulator_at(link, 8.0).run_constant(20.0, 0.95)
        for op in result.operations:
            assert op.storage_voltage_after >= BROWNOUT_VOLTAGE_V - 1e-9

    def test_operations_start_at_boot_voltage(self, link):
        result = simulator_at(link, 8.0).run_constant(20.0, 0.95)
        for op in result.operations:
            assert op.storage_voltage_before >= BOOT_VOLTAGE_V - 1e-9

    def test_zero_occupancy_never_operates(self, link):
        result = simulator_at(link, 5.0).run_constant(10.0, 0.0)
        assert result.count == 0

    def test_series_input_tracks_occupancy(self, link):
        sim = simulator_at(link, 8.0)
        # First half busy, second half silent.
        result = sim.run_series([0.95] * 10 + [0.0] * 10, window_s=1.0)
        first_half = sum(1 for op in result.operations if op.time_s < 10.0)
        second_half = result.count - first_half
        assert first_half > second_half

    def test_inter_operation_times(self, link):
        result = simulator_at(link, 8.0).run_constant(20.0, 0.95)
        gaps = result.inter_operation_times()
        assert len(gaps) == result.count - 1
        assert all(g >= 0 for g in gaps)

    def test_bigger_storage_slower_first_boot(self, link):
        small = simulator_at(
            link, 8.0, storage=Capacitor(5e-6, 5e6)
        ).run_constant(20.0, 0.95)
        big = simulator_at(
            link, 8.0, storage=Capacitor(50e-6, 5e6)
        ).run_constant(20.0, 0.95)
        assert big.operations[0].time_s > small.operations[0].time_s

    def test_validation(self, link):
        with pytest.raises(ConfigurationError):
            simulator_at(link, 10.0, step_s=0.0)
        sim = simulator_at(link, 10.0)
        with pytest.raises(ConfigurationError):
            sim.run_constant(0.0, 0.5)
        with pytest.raises(ConfigurationError):
            sim.run_constant(1.0, -0.1)
        with pytest.raises(ConfigurationError):
            sim.run_series([], window_s=1.0)
        with pytest.raises(ConfigurationError):
            DutyCycleSimulator(battery_free_harvester(), -10.0, 0.0)

    def test_empty_result_rate_zero(self):
        from repro.sensors.duty_cycle import DutyCycleResult

        assert DutyCycleResult().mean_rate_hz == 0.0
