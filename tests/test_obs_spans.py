"""Hierarchical span tracing: recorder semantics, engine/runner wiring.

Covers the span-layer contracts: deterministic ids and nesting, non-LIFO
closes, the detail gate, worker adoption across the pool boundary, the
``run-all`` span tree (root -> per-task -> engine spans), and the flame-style
text rendering.
"""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import runtime as obs_runtime
from repro.obs.spans import (
    NULL_SPANS,
    SpanRecorder,
    render_span_tree,
)
from repro.sim.engine import Simulator


@pytest.fixture(autouse=True)
def _fresh_runtime():
    """Every test starts and ends with a clean process-wide runtime."""
    obs_runtime.configure(enabled=True)
    yield
    obs_runtime.configure(enabled=True)


class TestSpanRecorder:
    def test_ids_are_sequential_and_prefixed(self):
        recorder = SpanRecorder(id_prefix="t07.")
        first = recorder.begin("a.b")
        second = recorder.begin("a.c")
        assert [first.span_id, second.span_id] == ["t07.1", "t07.2"]

    def test_nesting_defaults_to_stack_top(self):
        recorder = SpanRecorder()
        outer = recorder.begin("layer.outer")
        inner = recorder.begin("layer.inner")
        assert inner.parent_id == outer.span_id
        recorder.end(inner)
        sibling = recorder.begin("layer.sibling")
        assert sibling.parent_id == outer.span_id

    def test_explicit_parent_grafts(self):
        recorder = SpanRecorder()
        child = recorder.begin("layer.child", parent_id="s99")
        assert child.parent_id == "s99"

    def test_non_lifo_close_tolerated(self):
        """Event-driven spans (mac.medium.busy) close out of order."""
        recorder = SpanRecorder()
        first = recorder.begin("ch.one")
        second = recorder.begin("ch.two")
        recorder.end(first)  # closes the *outer* one first
        assert recorder.current() is second
        recorder.end(second)
        assert recorder.current() is None

    def test_context_manager_records_error_status(self):
        recorder = SpanRecorder()
        with pytest.raises(ValueError):
            with recorder.span("layer.failing"):
                raise ValueError("boom")
        (record,) = recorder.to_records()
        assert record["status"] == "error"
        assert record["wall_s"] is not None

    def test_name_validation(self):
        recorder = SpanRecorder()
        with pytest.raises(ObservabilityError, match="dotted lowercase"):
            recorder.begin("NotDotted")  # lint: ignore[PW006] deliberately invalid fixture
        with pytest.raises(ObservabilityError, match="dotted lowercase"):
            recorder.begin("single_segment")  # lint: ignore[PW006] deliberately invalid fixture

    def test_sim_time_bounds_and_duration(self):
        recorder = SpanRecorder()
        span = recorder.begin("sim.engine.run", sim_start_s=2.0)
        recorder.end(span, sim_end_s=5.5)
        assert span.sim_duration_s == pytest.approx(3.5)

    def test_retention_cap_counts_dropped(self):
        recorder = SpanRecorder(max_spans=2)
        for index in range(5):
            recorder.end(recorder.begin("layer.op", index=index))
        assert len(recorder.to_records()) == 2
        assert recorder.dropped == 3

    def test_disabled_recorder_is_inert(self):
        assert not NULL_SPANS.enabled
        span = NULL_SPANS.begin("any.thing.goes")  # not even validated
        NULL_SPANS.end(span)
        assert NULL_SPANS.to_records() == []

    def test_adopt_grafts_worker_records(self):
        parent = SpanRecorder()
        root = parent.begin("runner.run_all")
        worker = SpanRecorder(id_prefix="t01.")
        task = worker.begin("runner.task", parent_id=root.span_id)
        worker.end(task)
        parent.adopt(worker.to_records())
        parent.end(root)
        records = parent.to_records()
        assert {r["span_id"] for r in records} == {root.span_id, "t01.1"}
        adopted = next(r for r in records if r["span_id"] == "t01.1")
        assert adopted["parent_id"] == root.span_id

    def test_jsonl_roundtrip(self, tmp_path):
        recorder = SpanRecorder()
        recorder.end(recorder.begin("layer.op", kind="x"))
        path = tmp_path / "spans.jsonl"
        assert recorder.to_jsonl(str(path)) == 1
        (line,) = path.read_text().strip().splitlines()
        record = json.loads(line)
        assert record["name"] == "layer.op" and record["type"] == "span"


class TestEngineSpans:
    def test_sim_run_emits_engine_span(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run(until=2.0)
        records = obs_runtime.get_spans().to_records()
        (engine,) = [r for r in records if r["name"] == "sim.engine.run"]
        assert engine["sim_start_s"] == 0.0
        assert engine["sim_end_s"] == 2.0
        assert engine["labels"]["dispatched"] == 1

    def test_unobserved_sim_records_nothing(self):
        sim = Simulator(observe=False)
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert obs_runtime.get_spans().to_records() == []

    def test_spans_never_perturb_results(self):
        """Seeded occupancy is bit-identical with span detail on or off."""
        from repro.experiments.fig05_delay_sweep import measure_occupancy

        obs_runtime.configure(enabled=True, span_detail=True)
        with_detail = measure_occupancy(100.0, 5, duration_s=0.2, seed=7)
        detail_records = obs_runtime.get_spans().to_records()
        assert any(r["name"] == "mac.medium.busy" for r in detail_records)

        obs_runtime.configure(enabled=False)
        without_obs = measure_occupancy(100.0, 5, duration_s=0.2, seed=7)
        assert with_detail == without_obs

    def test_detail_spans_gated_off_by_default(self):
        from repro.experiments.fig05_delay_sweep import measure_occupancy

        measure_occupancy(100.0, 5, duration_s=0.2, seed=7)
        records = obs_runtime.get_spans().to_records()
        assert not any(r["name"] == "mac.medium.busy" for r in records)
        # Coarse spans still present.
        assert any(r["name"] == "experiments.base.build_testbed" for r in records)
        assert any(r["name"] == "sim.engine.run" for r in records)


class TestRunAllSpanTree:
    def test_parallel_run_builds_one_tree(self, tmp_path):
        from repro.runner import run_all

        result = run_all(
            ids=["fig9", "table1"],
            jobs=2,
            use_cache=False,
        )
        by_name = {}
        for record in result.spans:
            by_name.setdefault(record["name"], []).append(record)
        (root,) = by_name["runner.run_all"]
        assert root["parent_id"] is None
        tasks = by_name["runner.task"]
        assert len(tasks) == 2
        assert all(t["parent_id"] == root["span_id"] for t in tasks)
        # Worker-minted ids carry the per-task prefix.
        assert all(t["span_id"].startswith("t0") for t in tasks)
        assert {t["labels"]["experiment"] for t in tasks} == {"fig9", "table1"}

    def test_engine_spans_nest_under_tasks(self, monkeypatch):
        """Acceptance shape: root -> per-experiment -> >=1 engine span."""
        from repro.experiments import sweeps
        from repro.runner import run_all

        real_fig5_sweep = sweeps.fig5_sweep

        def tiny_fig5_sweep(seed, **kwargs):
            return real_fig5_sweep(
                seed, thresholds=(1,), delays_us=(10.0,), duration_s=0.05
            )

        monkeypatch.setattr(sweeps, "fig5_sweep", tiny_fig5_sweep)
        result = run_all(ids=["fig5"], jobs=1, use_cache=False)
        # The reduced sweep trips the full-size shape check by design; the
        # driver itself must have run clean for the span tree to be valid.
        assert result.run_for("fig5").error is None
        spans = result.spans
        (root,) = [r for r in spans if r["name"] == "runner.run_all"]
        tasks = [r for r in spans if r["name"] == "runner.task"]
        assert tasks and all(t["parent_id"] == root["span_id"] for t in tasks)
        task_ids = {t["span_id"] for t in tasks}
        engine = [r for r in spans if r["name"] == "sim.engine.run"]
        assert engine, "no engine spans under the run"
        by_id = {r["span_id"]: r for r in spans}

        def has_task_ancestor(record):
            seen = set()
            while record is not None and record["span_id"] not in seen:
                seen.add(record["span_id"])
                parent = record.get("parent_id")
                if parent in task_ids:
                    return True
                record = by_id.get(parent)
            return False

        assert all(has_task_ancestor(r) for r in engine)

    def test_no_obs_propagates_to_workers(self):
        from repro.runner import run_all

        obs_runtime.configure(enabled=False)
        result = run_all(ids=["fig9", "table1"], jobs=2, use_cache=False)
        assert result.ok
        assert result.spans == []
        for run in result.runs:
            for part in run.parts:
                assert part.metrics == []
                assert part.engine.get("dispatched", 0) == 0

    def test_worker_metrics_surface_in_parts(self, monkeypatch):
        """A pool worker's registry snapshot rides back on the outcome."""
        from repro.experiments import sweeps
        from repro.runner import run_all

        real_fig5_sweep = sweeps.fig5_sweep

        def tiny_fig5_sweep(seed, **kwargs):
            return real_fig5_sweep(
                seed, thresholds=(1, 5), delays_us=(10.0,), duration_s=0.05
            )

        monkeypatch.setattr(sweeps, "fig5_sweep", tiny_fig5_sweep)
        result = run_all(ids=["fig5"], jobs=2, use_cache=False)
        (run,) = result.runs
        assert run.error is None  # reduced sweep fails only the shape check
        assert len(run.parts) == 2  # two parts -> genuinely pooled
        for part in run.parts:
            names = {record["name"] for record in part.metrics}
            assert "mac.medium.transmissions" in names
            assert part.engine["dispatched"] > 0


class TestRenderTree:
    def test_renders_nested_tree_with_sim_time(self):
        records = [
            {
                "span_id": "s1",
                "parent_id": None,
                "name": "runner.run_all",
                "labels": {},
                "wall_s": 2.0,
                "status": "ok",
            },
            {
                "span_id": "s2",
                "parent_id": "s1",
                "name": "runner.task",
                "labels": {"experiment": "fig5"},
                "wall_s": 1.0,
                "sim_start_s": 0.0,
                "sim_end_s": 3.0,
                "status": "ok",
            },
        ]
        text = render_span_tree(records)
        lines = text.splitlines()
        assert lines[0].startswith("runner.run_all")
        assert lines[1].startswith("  runner.task{experiment=fig5}")
        assert "sim 3s" in lines[1]

    def test_orphans_render_at_top_level(self):
        records = [
            {
                "span_id": "t09.4",
                "parent_id": "dropped",
                "name": "sim.engine.run",
                "labels": {},
                "wall_s": 0.5,
                "status": "ok",
            }
        ]
        text = render_span_tree(records)
        assert text.startswith("sim.engine.run")

    def test_max_depth_truncates(self):
        records = [
            {"span_id": "a", "parent_id": None, "name": "l.a", "labels": {}, "wall_s": 1.0, "status": "ok"},
            {"span_id": "b", "parent_id": "a", "name": "l.b", "labels": {}, "wall_s": 0.5, "status": "ok"},
            {"span_id": "c", "parent_id": "b", "name": "l.c", "labels": {}, "wall_s": 0.2, "status": "ok"},
        ]
        assert len(render_span_tree(records, max_depth=1).splitlines()) == 2

    def test_error_status_flagged(self):
        records = [
            {
                "span_id": "s1",
                "parent_id": None,
                "name": "layer.broken",
                "labels": {},
                "wall_s": 0.1,
                "status": "error",
            }
        ]
        assert "[error]" in render_span_tree(records)


class TestSpansCli:
    def test_spans_subcommand_writes_jsonl_and_tree(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        code = main(["spans", "fig9", "--output", str(tmp_path / "spans.jsonl")])
        assert code == 0
        out = capsys.readouterr().out
        assert "== fig9 spans ==" in out
        assert "cli.spans.run" in out
        assert (tmp_path / "spans.jsonl").is_file()

    def test_spans_input_mode_renders_existing_export(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "spans.jsonl"
        path.write_text(
            json.dumps(
                {
                    "span_id": "s1",
                    "parent_id": None,
                    "name": "layer.op",
                    "labels": {},
                    "wall_s": 1.0,
                    "status": "ok",
                }
            )
            + "\n"
        )
        assert main(["spans", "--input", str(path)]) == 0
        assert "layer.op" in capsys.readouterr().out

    def test_spans_requires_exactly_one_source(self, capsys):
        from repro.cli import main

        assert main(["spans"]) == 2
        assert "exactly one" in capsys.readouterr().err
