"""Engine additions: periodic events, tombstoned heap, run-end hooks."""

import pytest

from repro.errors import SimulationError
from repro.obs.metrics import Histogram
from repro.sim.engine import COMPACT_MIN_TOMBSTONES, Simulator


class TestSchedulePeriodic:
    def test_fires_on_exact_float_recurrence(self):
        sim = Simulator()
        fired = []
        sim.schedule_periodic(0.1, lambda: fired.append(sim.now))
        sim.run(until=0.55)
        # Identical to a callback rescheduling itself: t += period each time.
        expected, t = [], 0.0
        for _ in range(6):
            expected.append(t)
            t += 0.1
        assert fired == expected

    def test_first_delay(self):
        sim = Simulator()
        fired = []
        sim.schedule_periodic(0.2, lambda: fired.append(sim.now), first_delay=0.05)
        sim.run(until=0.5)
        assert fired == [0.05, 0.05 + 0.2, 0.05 + 0.2 + 0.2]

    def test_cancel_stops_rearm(self):
        sim = Simulator()
        fired = []
        event = sim.schedule_periodic(0.1, lambda: fired.append(sim.now))
        sim.schedule(0.35, event.cancel)
        sim.run(until=1.0)
        assert fired == [0.0, 0.1, pytest.approx(0.2), pytest.approx(0.3)]
        assert sim.pending_events == 0

    def test_self_cancel_during_callback_stops_rearm(self):
        sim = Simulator()
        fired = []
        def tick():
            fired.append(sim.now)
            if len(fired) == 3:
                event.cancel()
        event = sim.schedule_periodic(0.1, tick)
        sim.run(until=2.0)
        assert len(fired) == 3

    def test_mutating_period_retunes_from_next_rearm(self):
        sim = Simulator()
        fired = []
        def tick():
            fired.append(sim.now)
            if len(fired) == 2:
                event.period = 0.5
        event = sim.schedule_periodic(0.1, tick)
        sim.run(until=1.15)
        assert fired == [0.0, 0.1, pytest.approx(0.6), pytest.approx(1.1)]

    def test_rejects_nonpositive_period(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_periodic(0.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule_periodic(-1.0, lambda: None)

    def test_interleaves_with_oneshot_events_by_seq(self):
        sim = Simulator()
        order = []
        sim.schedule_periodic(0.1, lambda: order.append("p"))
        sim.schedule(0.1, lambda: order.append("a"))
        sim.run(until=0.1)
        # The periodic event re-armed for t=0.1 *after* "a" was scheduled,
        # so at the tie "a" (earlier seq) dispatches first — exactly the
        # order a self-rescheduling callback would produce.
        assert order == ["p", "a", "p"]


class TestTombstoneHeap:
    def test_cancelled_counts_as_tombstone_until_popped(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        victim = sim.schedule(2.0, lambda: None)
        victim.cancel()
        assert sim.stats.heap_tombstones == 1
        sim.run()
        assert sim.stats.heap_tombstones == 0
        assert keep.cancelled is False

    def test_cancel_heavy_workload_compacts(self):
        sim = Simulator()
        events = [sim.schedule(1.0 + i * 1e-6, lambda: None) for i in range(400)]
        for event in events[: 2 * COMPACT_MIN_TOMBSTONES + 100]:
            event.cancel()
        # The next schedule call sees tombstones >= half the heap and compacts.
        sim.schedule(5.0, lambda: None)
        assert sim.stats.compactions >= 1
        assert sim.stats.heap_tombstones == 0
        survivors = [e for e in events if not e.cancelled]
        fired = []
        sim.schedule(10.0, lambda: fired.append("end"))
        sim.run()
        assert fired == ["end"]
        assert all(not e.heaped for e in events)
        assert len(survivors) == 400 - (2 * COMPACT_MIN_TOMBSTONES + 100)

    def test_order_preserved_across_compaction(self):
        sim = Simulator()
        fired = []
        for i in range(300):
            sim.schedule(1.0 + i * 0.001, fired.append, i)
        victims = []
        for i, entry in enumerate(list(sim._heap)):
            if i % 2:
                entry[2].cancel()
                victims.append(entry[2])
        sim.schedule(0.5, lambda: None)  # may trigger compaction
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == 150

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.stats.heap_tombstones == 1
        sim.run()
        assert sim.stats.heap_tombstones == 0


class TestRunEndHooks:
    def test_hook_fires_after_clock_advance(self):
        sim = Simulator()
        seen = []
        sim.add_run_end_hook(lambda: seen.append(sim.now))
        sim.schedule(0.5, lambda: None)
        sim.run(until=2.0)
        # The hook observes the final clock (advanced to `until`).
        assert seen == [2.0]

    def test_hook_fires_per_run_call(self):
        sim = Simulator()
        seen = []
        sim.add_run_end_hook(lambda: seen.append(sim.now))
        sim.run(until=1.0)
        sim.run(until=2.0)
        assert seen == [1.0, 2.0]

    def test_hook_skipped_on_error(self):
        sim = Simulator()
        seen = []
        sim.add_run_end_hook(lambda: seen.append(True))
        def boom():
            raise RuntimeError("boom")
        sim.schedule(0.1, boom)
        with pytest.raises(RuntimeError):
            sim.run()
        assert seen == []


class TestObserveManyEdgeCases:
    def test_reservoir_decimation_boundary(self):
        scalar = Histogram("h", (), (1, 10))
        bulk = Histogram("h", (), (1, 10))
        # Push both through several stride doublings, split across calls.
        for _ in range(700):
            scalar.observe(4.0)
        bulk.observe_many(4.0, 700)
        for _ in range(900):
            scalar.observe(7.0)
        bulk.observe_many(7.0, 900)
        assert scalar.to_record() == bulk.to_record()
        assert scalar._reservoir == bulk._reservoir
        assert scalar._stride == bulk._stride
        assert scalar._seen == bulk._seen

    def test_fractional_value_sum_is_bit_identical(self):
        scalar = Histogram("h", (), (1,))
        bulk = Histogram("h", (), (1,))
        for _ in range(1234):
            scalar.observe(0.1)
        bulk.observe_many(0.1, 1234)
        assert scalar.sum == bulk.sum  # exact, not approx

    def test_mixed_scalar_and_bulk(self):
        scalar = Histogram("h", (), (1, 5))
        mixed = Histogram("h", (), (1, 5))
        values = [2.0] * 100 + [6.0] * 57 + [2.0] * 513
        for v in values:
            scalar.observe(v)
        mixed.observe_many(2.0, 100)
        for _ in range(57):
            mixed.observe(6.0)
        mixed.observe_many(2.0, 513)
        assert scalar.to_record() == mixed.to_record()

    def test_zero_and_negative_counts_noop(self):
        h = Histogram("h", (), (1,))
        h.observe_many(3.0, 0)
        h.observe_many(3.0, -5)
        assert h.count == 0
        assert h._seen == 0
