"""Runner hardening under injected failure: retries, watchdog, recovery.

These tests drive :func:`repro.runner.run_all` through every degraded mode
the fault subsystem can manufacture — raised tasks, crashed and hung
workers, unpicklable results, corrupt cache entries, interrupted manifest
writes, delivered signals — and pin the two contracts of the robustness
layer:

* **containment**: one task's failure never takes down the run, the other
  experiments, or the manifest;
* **invariance**: retried-away infrastructure faults leave result hashes
  byte-identical to a fault-free run at the same seed.

Pool-based cases reuse one small id set so the process-spawn cost stays
tier-1 friendly.
"""

import json
import signal

import pytest

from repro.errors import InjectedFault
from repro.faults import FaultPlan, FaultSpec
from repro.faults import runtime as faults_runtime
from repro.obs import runtime as obs_runtime
from repro.obs.ioutil import append_line, write_atomic
from repro.runner import ResultCache, run_all, write_manifest
from repro.runner.core import _InterruptGuard
from repro.runner.manifest import build_manifest

#: Two fast single-task experiments: enough to show containment (one
#: faulted, one clean) without ballooning tier-1 wall clock.
IDS = ["fig9", "table1"]


@pytest.fixture()
def cache_dir(tmp_path):
    return str(tmp_path / "cache")


def _plan(*specs, seed=0):
    return FaultPlan(specs, seed=seed)


class TestRetriesInProcess:
    def test_injected_raise_fails_only_its_experiment(self, cache_dir):
        plan = _plan(FaultSpec("worker.raise", scope="fig9:*"))
        result = run_all(ids=IDS, jobs=1, cache_dir=cache_dir, fault_plan=plan)
        assert not result.ok
        failed = result.run_for("fig9")
        assert failed.error is not None
        assert "InjectedFault" in failed.error
        (part,) = failed.parts
        assert part.attempts == 1
        assert part.failure_kind == "error"
        assert result.run_for("table1").ok  # containment
        manifest = build_manifest(result)  # partial runs still render
        assert manifest["totals"]["failed"] == 1

    def test_retry_recovers_and_counts_attempts(self, cache_dir):
        plan = _plan(FaultSpec("worker.raise", scope="fig9:*"))
        result = run_all(
            ids=IDS, jobs=1, cache_dir=cache_dir, retries=2, fault_plan=plan
        )
        assert result.ok
        (part,) = result.run_for("fig9").parts
        assert part.attempts == 2
        assert part.failure_kind is None and part.error is None
        (clean_part,) = result.run_for("table1").parts
        assert clean_part.attempts == 1

    def test_crash_and_unpicklable_degrade_to_raises(self, cache_dir):
        # At jobs=1 the "worker" is the orchestrator: process-killing
        # faults must degrade to recoverable raises, not kill the run.
        plan = _plan(
            FaultSpec("worker.crash", scope="fig9:*"),
            FaultSpec("worker.unpicklable", scope="table1:*"),
        )
        result = run_all(
            ids=IDS, jobs=1, cache_dir=cache_dir, retries=1, fault_plan=plan
        )
        assert result.ok
        assert all(run.parts[0].attempts == 2 for run in result.runs)

    def test_failure_metrics_and_spans_recorded(self, cache_dir):
        obs_runtime.configure(enabled=True)
        registry = obs_runtime.get_registry()
        plan = _plan(FaultSpec("worker.raise", scope="fig9:*"))
        result = run_all(ids=["fig9"], jobs=1, cache_dir=cache_dir, fault_plan=plan)
        assert registry.value("runner.parts.failed", experiment="fig9") == 1
        error_spans = [
            record
            for record in result.spans
            if record["name"] == "runner.task" and record.get("status") == "error"
        ]
        assert error_spans, "failed task must leave an error-status span"
        obs_runtime.configure(enabled=True)  # leave a clean registry behind


class TestPoolRecovery:
    def test_worker_crash_is_retried_to_identical_results(self, cache_dir):
        baseline = run_all(ids=IDS, jobs=2, use_cache=False)
        plan = _plan(FaultSpec("worker.crash", scope="fig9:*"))
        result = run_all(
            ids=IDS, jobs=2, cache_dir=cache_dir, retries=2, fault_plan=plan
        )
        assert result.ok
        (part,) = result.run_for("fig9").parts
        assert part.attempts >= 2
        assert part.failure_kind is None
        # The chaos invariant: infra faults never change result bytes.
        for key in IDS:
            assert (
                result.run_for(key).result_sha256
                == baseline.run_for(key).result_sha256
            ), key

    def test_worker_crash_without_retries_is_contained(self, cache_dir):
        plan = _plan(FaultSpec("worker.crash", scope="fig9:*"))
        result = run_all(ids=IDS, jobs=2, cache_dir=cache_dir, fault_plan=plan)
        assert not result.ok
        failed = result.run_for("fig9")
        (part,) = failed.parts
        assert part.failure_kind in {"pool_broken", "error"}
        # table1 may have been in flight when the pool broke; with zero
        # retries it is then also charged — but the run itself returned,
        # the manifest renders, and nothing raised out of run_all.
        manifest = build_manifest(result)
        assert manifest["totals"]["failed"] >= 1

    def test_watchdog_reclaims_hung_worker(self, cache_dir):
        plan = _plan(FaultSpec("worker.hang", param=30.0, scope="fig9:*"))
        result = run_all(
            ids=IDS,
            jobs=2,
            cache_dir=cache_dir,
            retries=1,
            task_timeout_s=1.5,
            fault_plan=plan,
        )
        assert result.ok
        (part,) = result.run_for("fig9").parts
        assert part.timed_out is True
        assert part.attempts == 2
        assert result.wall_s < 25.0  # reclaimed, not slept through

    def test_timeout_without_retries_fails_the_part(self, cache_dir):
        plan = _plan(FaultSpec("worker.hang", param=30.0, scope="fig9:*"))
        result = run_all(
            ids=IDS, jobs=2, cache_dir=cache_dir, task_timeout_s=1.0, fault_plan=plan
        )
        assert not result.ok
        (part,) = result.run_for("fig9").parts
        assert part.failure_kind == "timeout"
        assert "timeout" in (part.error or "")

    def test_unpicklable_result_is_retried(self, cache_dir):
        plan = _plan(FaultSpec("worker.unpicklable", scope="table1:*"))
        result = run_all(
            ids=IDS, jobs=2, cache_dir=cache_dir, retries=1, fault_plan=plan
        )
        assert result.ok
        (part,) = result.run_for("table1").parts
        assert part.attempts == 2


class TestFaultDeterminism:
    def test_same_fault_seed_injects_same_faults_twice(self, tmp_path):
        events = []
        for attempt in range(2):
            plan = _plan(
                FaultSpec("worker.raise"), FaultSpec("worker.hang", param=0.01)
            , seed=13)
            result = run_all(
                ids=IDS,
                jobs=1,
                cache_dir=str(tmp_path / f"c{attempt}"),
                retries=2,
                fault_plan=plan,
            )
            assert result.ok
            events.append(result.fault_events)
            assert result.fault_plan == plan.describe()
        assert events[0] == events[1]


class TestCacheQuarantine:
    def test_corrupt_entry_quarantined_and_reexecuted(self, cache_dir):
        obs_runtime.configure(enabled=True)
        registry = obs_runtime.get_registry()
        cold = run_all(ids=["fig9"], jobs=1, cache_dir=cache_dir)
        key = cold.run_for("fig9").parts[0].key
        cache = ResultCache(cache_dir)
        assert cache.corrupt_entry(key)  # plant a truncated .pkl

        rerun = run_all(ids=["fig9"], jobs=1, cache_dir=cache_dir)
        assert rerun.ok
        assert rerun.cache_hits == 0  # corrupt entry must not read as a hit
        assert rerun.quarantined == [key]
        assert (
            rerun.run_for("fig9").result_sha256 == cold.run_for("fig9").result_sha256
        )
        quarantined = ResultCache(cache_dir).quarantine_dir / f"{key}.pkl"
        assert quarantined.is_file()  # kept for autopsy, not destroyed
        assert registry.value("runner.cache.corrupt") == 1
        manifest = build_manifest(rerun)
        assert manifest["cache"]["quarantined"] == [key]
        obs_runtime.configure(enabled=True)

    def test_quarantine_emits_progress_line(self, cache_dir):
        run_all(ids=["fig9"], jobs=1, cache_dir=cache_dir)
        cache = ResultCache(cache_dir)
        key = next(iter(cache.keys()))
        cache.corrupt_entry(key)
        lines = []
        run_all(ids=["fig9"], jobs=1, cache_dir=cache_dir, progress=lines.append)
        assert any("quarantined corrupt entry" in line for line in lines)

    def test_cache_corrupt_fault_point(self, cache_dir):
        run_all(ids=IDS, jobs=1, cache_dir=cache_dir)
        plan = _plan(FaultSpec("cache.corrupt", scope="fig9:*"))
        result = run_all(ids=IDS, jobs=1, cache_dir=cache_dir, fault_plan=plan)
        assert result.ok
        assert result.cache_hits == 1  # table1 still hits
        assert len(result.quarantined) == 1
        fired = [e for e in result.fault_events if e.get("fired")]
        assert fired and fired[0]["point"] == "cache.corrupt"


class TestAtomicIo:
    def test_write_atomic_replaces_and_cleans_up(self, tmp_path):
        target = tmp_path / "out.json"
        write_atomic(target, "first\n")
        write_atomic(target, "second\n")
        assert target.read_text() == "second\n"
        assert list(tmp_path.iterdir()) == [target]  # no temp litter

    def test_append_line_appends_whole_lines(self, tmp_path):
        target = tmp_path / "log.jsonl"
        append_line(target, "one")
        append_line(target, "two\n")
        assert target.read_text() == "one\ntwo\n"

    def test_interrupted_write_preserves_previous_content(self, tmp_path):
        target = tmp_path / "manifest.json"
        write_atomic(target, "intact\n", fault_point="manifest.interrupt")
        faults_runtime.reset()
        faults_runtime.arm("manifest.interrupt")
        with pytest.raises(InjectedFault, match="manifest.interrupt"):
            write_atomic(target, "torn\n", fault_point="manifest.interrupt")
        assert target.read_text() == "intact\n"  # old content untouched
        assert list(tmp_path.iterdir()) == [target]  # temp removed
        # Disarmed after one firing: the retry completes.
        write_atomic(target, "recovered\n", fault_point="manifest.interrupt")
        assert target.read_text() == "recovered\n"

    def test_manifest_write_interrupt_end_to_end(self, tmp_path, cache_dir):
        result = run_all(ids=["table1"], jobs=1, cache_dir=cache_dir)
        path = tmp_path / "run_manifest.json"
        write_manifest(result, str(path))
        before = path.read_text()
        faults_runtime.reset()
        faults_runtime.arm("manifest.interrupt")
        with pytest.raises(InjectedFault):
            write_manifest(result, str(path))
        assert path.read_text() == before  # prior manifest intact
        manifest = write_manifest(result, str(path))  # retry completes
        assert json.loads(path.read_text())["schema"] == manifest["schema"]


class TestGracefulInterrupt:
    def test_guard_flags_first_signal_and_raises_on_second(self):
        with _InterruptGuard() as guard:
            signal.raise_signal(signal.SIGINT)
            assert guard.triggered  # flagged, not raised
            with pytest.raises(KeyboardInterrupt):
                signal.raise_signal(signal.SIGINT)

    def test_sigint_mid_run_yields_partial_result(self, cache_dir):
        fired = {"done": False}

        def interrupt_after_first_task(line):
            if line.startswith("[task") and not fired["done"]:
                fired["done"] = True
                signal.raise_signal(signal.SIGINT)

        result = run_all(
            ids=IDS,
            jobs=1,
            cache_dir=cache_dir,
            progress=interrupt_after_first_task,
        )
        assert result.interrupted
        assert not result.ok
        kinds = {
            part.failure_kind for run in result.runs for part in run.parts
        }
        assert "interrupted" in kinds
        # Exactly one task completed before the signal landed.
        completed = [
            run for run in result.runs if run.parts[0].failure_kind is None
        ]
        assert len(completed) == 1
        manifest = build_manifest(result)  # the partial manifest still renders
        assert manifest["interrupted"] is True
        interrupted_parts = [
            part
            for entry in manifest["experiments"]
            for part in entry["parts"]
            if part["failure_kind"] == "interrupted"
        ]
        assert interrupted_parts

    def test_sigint_with_hung_pool_worker_still_exits(self, tmp_path):
        """Interrupting a pool run with a hung worker must not deadlock.

        Regression: the teardown path read ``pool._processes`` *after*
        ``shutdown()`` had nulled it, so the hung worker was never
        terminated and the atexit join on the pool's management thread
        blocked interpreter exit forever.
        """
        import os
        import subprocess
        import sys
        import time

        import repro

        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        report = tmp_path / "mi.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [src_dir, env.get("PYTHONPATH")])
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "run-all",
                "--ids", ",".join(IDS), "--jobs", "2",
                "--no-cache", "--no-history",
                "--report", str(report),
                "--fault-plan", "worker.hang:1@120",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            time.sleep(3.0)  # let the pool spin up and the hang fire
            proc.send_signal(signal.SIGINT)
            code = proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert code == 1, f"interrupted run exited {code}"
        manifest = json.loads(report.read_text())
        assert manifest["interrupted"] is True
        kinds = {
            part["failure_kind"]
            for entry in manifest["experiments"]
            for part in entry["parts"]
        }
        assert "interrupted" in kinds
