"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harvester.dcdc import SeikoSz882, TiBq25570
from repro.harvester.harvester import battery_free_harvester
from repro.harvester.rectifier import VoltageDoubler
from repro.harvester.storage import Capacitor
from repro.mac80211.airtime import frame_airtime_s
from repro.mac80211.frames import FrameJob, FrameKind
from repro.mac80211.rates import ALL_80211G_RATES_MBPS, PHY_80211G
from repro.netstack.txqueue import DeviceQueue, power_vs_client
from repro.packets.bytesutil import internet_checksum
from repro.packets.dot11 import Dot11Data, MacAddress
from repro.packets.ipv4 import IpPowerOption, IPv4Packet
from repro.packets.radiotap import RadiotapHeader
from repro.packets.udp import UdpDatagram
from repro.sim.engine import Simulator
from repro.units import dbm_to_watts, watts_to_dbm

rates = st.sampled_from(ALL_80211G_RATES_MBPS)
frame_sizes = st.integers(min_value=1, max_value=4096)
payloads = st.binary(min_size=0, max_size=512)


class TestChecksumProperties:
    @given(payloads)
    def test_checksum_of_data_plus_checksum_is_zero(self, data):
        """Appending the checksum word makes the total sum validate."""
        checksum = internet_checksum(data)
        if len(data) % 2:
            data = data + b"\x00"
        combined = data + checksum.to_bytes(2, "big")
        assert internet_checksum(combined) == 0

    @given(payloads)
    def test_checksum_in_16bit_range(self, data):
        assert 0 <= internet_checksum(data) <= 0xFFFF


class TestCodecRoundTrips:
    @given(payloads, st.integers(0, 0xFFF))
    def test_dot11_data_round_trip(self, payload, sequence):
        mac = MacAddress.from_string("02:00:00:00:00:01")
        frame = Dot11Data.broadcast(mac, mac, payload=payload, sequence=sequence)
        decoded = Dot11Data.decode(frame.encode(with_fcs=True))
        assert decoded.payload == payload
        assert decoded.header.sequence == sequence

    @given(
        st.integers(0, 65535),
        st.integers(0, 65535),
        payloads,
    )
    def test_udp_round_trip(self, src, dst, payload):
        datagram = UdpDatagram(src_port=src, dst_port=dst, payload=payload)
        raw = datagram.encode("10.1.2.3", "10.3.2.1")
        assert UdpDatagram.decode(raw, "10.1.2.3", "10.3.2.1") == datagram

    @given(st.integers(0, 0xFFFF), payloads)
    def test_ipv4_power_round_trip(self, interface_id, payload):
        packet = IPv4Packet(
            src="192.168.1.1",
            dst="255.255.255.255",
            payload=payload,
            power_option=IpPowerOption(interface_id=interface_id),
        )
        decoded = IPv4Packet.decode(packet.encode())
        assert decoded.power_option.interface_id == interface_id
        assert decoded.payload == payload

    @given(rates, st.integers(0, 2**40), st.sampled_from([2412, 2437, 2462]))
    def test_radiotap_round_trip(self, rate, tsft, channel):
        header = RadiotapHeader(tsft_us=tsft, rate_mbps=rate, channel_mhz=channel)
        decoded, rest = RadiotapHeader.decode(header.encode() + b"tail")
        assert decoded.rate_mbps == rate
        assert decoded.tsft_us == tsft
        assert decoded.channel_mhz == channel
        assert rest == b"tail"


class TestAirtimeProperties:
    @given(frame_sizes, rates)
    def test_airtime_positive_and_bounded(self, size, rate):
        airtime = frame_airtime_s(size, rate)
        # Never faster than the raw bits, never absurdly slow.
        assert airtime >= 8 * size / (rate * 1e6)
        assert airtime <= 8 * size / (rate * 1e6) + 250e-6

    @given(frame_sizes, frame_sizes, rates)
    def test_airtime_monotone_in_size(self, a, b, rate):
        small, large = sorted((a, b))
        assert frame_airtime_s(small, rate) <= frame_airtime_s(large, rate)

    @given(frame_sizes)
    def test_airtime_monotone_in_rate_ofdm(self, size):
        times = [frame_airtime_s(size, r) for r in (6.0, 12.0, 24.0, 54.0)]
        assert times == sorted(times, reverse=True)


class TestQueueProperties:
    @given(
        st.lists(
            st.tuples(st.booleans(), frame_sizes),
            min_size=0,
            max_size=60,
        )
    )
    def test_conservation(self, operations):
        """Everything pushed is either queued, popped, or tail-dropped."""
        queue = DeviceQueue(capacity=10, classifier=power_vs_client)
        pushed = dropped = popped = 0
        for is_push, size in operations:
            if is_push:
                frame = FrameJob(
                    mac_bytes=size,
                    rate_mbps=54.0,
                    kind=FrameKind.POWER if size % 2 else FrameKind.DATA,
                    broadcast=bool(size % 2),
                )
                if queue.push(frame):
                    pushed += 1
                else:
                    dropped += 1
            else:
                if queue.pop() is not None:
                    popped += 1
        assert pushed == popped + len(queue)
        assert queue.total_tail_dropped == dropped

    @given(st.lists(frame_sizes, min_size=1, max_size=30))
    def test_fifo_order_within_class(self, sizes):
        queue = DeviceQueue(capacity=100)
        frames = [FrameJob(mac_bytes=s, rate_mbps=54.0) for s in sizes]
        for frame in frames:
            queue.push(frame)
        out = []
        while True:
            frame = queue.pop()
            if frame is None:
                break
            out.append(frame)
        assert out == frames


class TestSimulatorProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), max_size=40))
    def test_dispatch_order_is_sorted(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(d))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=20),
        st.floats(min_value=0.0, max_value=10.0),
    )
    def test_run_until_splits_cleanly(self, delays, cut):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(d))
        sim.run(until=cut)
        early = len(fired)
        assert all(d <= cut for d in fired)
        sim.run()
        assert len(fired) == len(delays)
        assert early == sum(1 for d in delays if d <= cut)


class TestUnitProperties:
    @given(st.floats(min_value=-80.0, max_value=50.0))
    def test_dbm_watts_round_trip(self, dbm):
        assert abs(watts_to_dbm(dbm_to_watts(dbm)) - dbm) < 1e-9

    @given(st.floats(min_value=-80.0, max_value=50.0))
    def test_dbm_watts_monotone(self, dbm):
        assert dbm_to_watts(dbm + 1.0) > dbm_to_watts(dbm)


class TestHarvesterProperties:
    @given(st.floats(min_value=-30.0, max_value=10.0))
    @settings(max_examples=40)
    def test_dc_never_exceeds_incident(self, dbm):
        harvester = battery_free_harvester()
        assert harvester.dc_output_power_w(dbm) <= dbm_to_watts(dbm)

    @given(st.floats(min_value=-30.0, max_value=10.0))
    @settings(max_examples=40)
    def test_dc_below_rectifier_output(self, dbm):
        harvester = battery_free_harvester()
        point = harvester.operating_point(dbm)
        assert point.dc_output_w <= point.rectifier_output_w + 1e-18

    @given(
        st.floats(min_value=1e-9, max_value=1e-2),
        st.floats(min_value=10.0, max_value=2000.0),
        st.floats(min_value=0.0, max_value=5.0),
    )
    @settings(max_examples=60)
    def test_doubler_load_line_conserves_power(self, delivered, resistance, voltage):
        doubler = VoltageDoubler()
        assert doubler.output_power(delivered, resistance, voltage) <= delivered

    @given(st.floats(min_value=0.0, max_value=3.0))
    def test_dcdc_efficiency_bounded(self, vin):
        for converter in (SeikoSz882(), TiBq25570()):
            assert 0.0 <= converter.efficiency(vin) <= 1.0


class TestStorageProperties:
    @given(
        st.lists(st.floats(min_value=0.0, max_value=1e-3), max_size=30),
    )
    def test_capacitor_energy_never_negative(self, deposits):
        cap = Capacitor(capacitance_f=1e-6, leakage_resistance_ohm=1e5)
        for amount in deposits:
            cap.deposit(amount)
            cap.leak(0.01)
            cap.withdraw(amount / 2)
        assert cap.energy_j >= 0
        assert cap.voltage_v >= 0

    @given(st.floats(min_value=0.0, max_value=5.0), st.floats(min_value=0.0, max_value=100.0))
    def test_leak_only_decreases(self, v0, dt):
        cap = Capacitor(capacitance_f=1e-6, leakage_resistance_ohm=1e6, initial_voltage_v=v0)
        cap.leak(dt)
        assert cap.voltage_v <= v0 + 1e-12
