"""Fault-injection subsystem: plans, directives, world faults, runtime.

The contract under test is determinism: a fault plan is as seeded as the
simulation it attacks, so any chaos run — which task a crash hits, when a
channel outage opens — replays exactly from ``(seed, specs, task set)``.
"""

import pickle

import pytest

from repro.core.router import Scheme
from repro.errors import ConfigurationError, InjectedFault
from repro.experiments.base import build_testbed
from repro.faults import (
    FAULT_POINTS,
    INFRA_FAULT_POINTS,
    WORKER_FAULT_POINTS,
    WORLD_FAULT_POINTS,
    FaultDirective,
    FaultPlan,
    FaultSpec,
    apply_to_testbed,
    parse_fault_plan,
    schedule_world_faults,
)
from repro.faults import runtime as faults_runtime
from repro.faults.inject import fire_worker_faults, sabotage_outcome
from repro.sim.engine import Simulator

LABELS = [
    "fig9:all",
    "table1:all",
    "fig14:home=1",
    "fig14:home=2",
    "fig14:home=3",
]


class TestFaultSpecValidation:
    def test_unknown_point_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault point"):
            FaultSpec("worker.explode")

    def test_zero_count_rejected(self):
        with pytest.raises(ConfigurationError, match="count must be >= 1"):
            FaultSpec("worker.raise", count=0)

    def test_registries_are_disjoint_and_complete(self):
        assert set(INFRA_FAULT_POINTS) | set(WORLD_FAULT_POINTS) == set(FAULT_POINTS)
        assert not set(INFRA_FAULT_POINTS) & set(WORLD_FAULT_POINTS)
        assert WORKER_FAULT_POINTS < set(INFRA_FAULT_POINTS)

    def test_directives_are_picklable(self):
        directive = FaultDirective("worker.hang", param=2.5)
        assert pickle.loads(pickle.dumps(directive)) == directive


class TestPlanParsing:
    def test_spec_string_roundtrip(self):
        text = "worker.crash:1,worker.hang:2@20,worker.raise:1%fig14:*"
        plan = parse_fault_plan(text, seed=5)
        assert plan.describe() == text
        assert plan.seed == 5

    def test_empty_spec_rejected(self):
        with pytest.raises(ConfigurationError, match="empty fault plan"):
            parse_fault_plan("  ,  ")

    def test_json_plan(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(
            '{"seed": 9, "faults": ['
            '{"point": "worker.crash"},'
            '{"point": "worker.hang", "count": 2, "param": 20, "scope": "fig9:*"}'
            "]}"
        )
        plan = parse_fault_plan(str(path), seed=0)
        assert plan.seed == 9  # file seed wins over the argument
        assert plan.describe() == "worker.crash:1,worker.hang:2@20%fig9:*"

    def test_json_plan_missing_faults_rejected(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("{}")
        with pytest.raises(ConfigurationError, match="'faults' list"):
            parse_fault_plan(str(path))


class TestAssignmentDeterminism:
    def test_same_seed_same_assignment(self):
        specs = [FaultSpec("worker.crash"), FaultSpec("worker.hang", param=5.0)]
        first = FaultPlan(specs, seed=3).assign(LABELS)
        second = FaultPlan(specs, seed=3).assign(LABELS)
        assert first == second

    def test_label_order_is_irrelevant(self):
        specs = [FaultSpec("worker.raise", count=2)]
        forward = FaultPlan(specs, seed=1).assign(LABELS)
        backward = FaultPlan(specs, seed=1).assign(list(reversed(LABELS)))
        assert forward == backward

    def test_different_seed_can_move_targets(self):
        specs = [FaultSpec("worker.raise")]
        assignments = {
            tuple(sorted(FaultPlan(specs, seed=s).assign(LABELS)))
            for s in range(8)
        }
        assert len(assignments) > 1  # the seed genuinely steers selection

    def test_scope_restricts_targets(self):
        plan = FaultPlan([FaultSpec("worker.crash", count=5, scope="fig14:*")], seed=0)
        assignment = plan.assign(LABELS)
        assert set(assignment) == {"fig14:home=1", "fig14:home=2", "fig14:home=3"}

    def test_manifest_interrupt_is_not_task_scoped(self):
        plan = FaultPlan([FaultSpec("manifest.interrupt")], seed=0)
        assert plan.assign(LABELS) == {}
        assert plan.wants("manifest.interrupt")

    def test_world_specs_excluded_from_assignment(self):
        plan = FaultPlan(
            [FaultSpec("world.channel.outage"), FaultSpec("worker.raise")], seed=0
        )
        assignment = plan.assign(LABELS)
        points = {d.point for ds in assignment.values() for d in ds}
        assert points == {"worker.raise"}
        assert [s.point for s in plan.world_specs()] == ["world.channel.outage"]


class TestWorkerFaultFiring:
    def test_no_directives_is_a_noop(self):
        fire_worker_faults((), in_process=False)
        assert sabotage_outcome((), {"x": 1}, in_process=False) == {"x": 1}

    def test_raise_fires(self):
        with pytest.raises(InjectedFault, match="worker.raise"):
            fire_worker_faults((FaultDirective("worker.raise"),), in_process=False)

    def test_crash_degrades_to_raise_in_process(self):
        with pytest.raises(InjectedFault, match="degraded to raise"):
            fire_worker_faults((FaultDirective("worker.crash"),), in_process=True)

    def test_hang_sleeps_param_seconds(self):
        import time

        start = time.perf_counter()
        fire_worker_faults(
            (FaultDirective("worker.hang", param=0.05),), in_process=False
        )
        assert time.perf_counter() - start >= 0.05

    def test_unpicklable_wrapper_defeats_pickle(self):
        sabotaged = sabotage_outcome(
            (FaultDirective("worker.unpicklable"),), {"x": 1}, in_process=False
        )
        with pytest.raises(InjectedFault):
            pickle.dumps(sabotaged)

    def test_unpicklable_degrades_to_raise_in_process(self):
        # In-process results are never pickled, so the wrapper would
        # silently *become* the recorded result — degrade to a raise.
        with pytest.raises(InjectedFault, match="degraded to raise"):
            sabotage_outcome(
                (FaultDirective("worker.unpicklable"),), {"x": 1}, in_process=True
            )


class TestFaultRuntime:
    def test_arm_consume_cycle(self):
        faults_runtime.reset()
        assert not faults_runtime.consume("manifest.interrupt")
        faults_runtime.arm("manifest.interrupt", count=2)
        assert faults_runtime.armed("manifest.interrupt") == 2
        assert faults_runtime.consume("manifest.interrupt")
        assert faults_runtime.consume("manifest.interrupt")
        assert not faults_runtime.consume("manifest.interrupt")

    def test_reset_disarms(self):
        faults_runtime.arm("manifest.interrupt")
        faults_runtime.reset()
        assert faults_runtime.armed("manifest.interrupt") == 0


class TestWorldFaultScheduling:
    def _plan(self, *specs, seed=0):
        return FaultPlan(specs, seed=seed)

    def test_events_are_deterministic(self):
        events = []
        for _ in range(2):
            tb = build_testbed(Scheme.POWIFI, seed=0)
            plan = self._plan(
                FaultSpec("world.channel.outage", count=2, param=0.1),
                FaultSpec("world.injector.stall", param=0.2),
                seed=11,
            )
            events.append(
                [e.to_record() for e in apply_to_testbed(plan, tb, horizon_s=1.0)]
            )
        assert events[0] == events[1]
        assert len(events[0]) == 3

    def test_channel_outage_raises_busy_time(self):
        tb = build_testbed(Scheme.POWIFI, seed=0)
        plan = self._plan(FaultSpec("world.channel.outage", param=0.3), seed=2)
        events = apply_to_testbed(plan, tb, horizon_s=1.0)
        (event,) = events
        tb.sim.run(until=1.0)
        channel = int(event.target.split("=")[1])
        medium = tb.media[channel]
        assert medium.outage_count == 1
        assert medium.total_busy_time >= 0.3 - 1e-9

    def test_injector_stall_skips_ticks(self):
        tb = build_testbed(Scheme.POWIFI, seed=0)
        plan = self._plan(FaultSpec("world.injector.stall", param=0.2), seed=4)
        (event,) = apply_to_testbed(plan, tb, horizon_s=1.0)
        tb.start()
        tb.sim.run(until=1.0)
        name = event.target.split("=", 1)[1]
        injector = next(
            i for i in tb.router.injectors.values() if i.station.name == name
        )
        assert injector.stalled_ticks > 0

    def test_txqueue_overflow_forces_drops(self):
        from repro.netstack.txqueue import DeviceQueue

        sim = Simulator()
        queue = DeviceQueue(capacity=4, name="q0")
        plan = self._plan(FaultSpec("world.txqueue.overflow", param=0.5), seed=0)
        events = schedule_world_faults(plan, sim, horizon_s=1.0, queues=[queue])
        (event,) = events
        mid = event.start_s + event.duration_s / 2

        outcomes = {}
        sim.schedule(mid, lambda: outcomes.update(during=queue.push(object())))
        sim.schedule(
            event.start_s + event.duration_s + 0.01,
            lambda: outcomes.update(after=queue.push(object())),
        )
        sim.run(until=2.0)
        assert outcomes["during"] is False
        assert outcomes["after"] is True
        assert queue.total_forced_dropped == 1

    def test_capacitor_brownout_zeroes_charge(self):
        from repro.harvester.storage import Capacitor

        sim = Simulator()
        cap = Capacitor(1e-3, initial_voltage_v=3.0)
        plan = self._plan(FaultSpec("world.harvester.brownout"), seed=0)
        schedule_world_faults(plan, sim, horizon_s=1.0, capacitors=[cap])
        sim.run(until=1.0)
        assert cap.voltage_v == 0.0
        assert cap.energy_j == 0.0

    def test_empty_component_pool_is_skipped(self):
        sim = Simulator()
        plan = self._plan(FaultSpec("world.channel.outage"))
        assert schedule_world_faults(plan, sim, horizon_s=1.0) == []

    def test_bad_horizon_rejected(self):
        sim = Simulator()
        plan = self._plan(FaultSpec("world.channel.outage"))
        with pytest.raises(ConfigurationError, match="horizon"):
            schedule_world_faults(plan, sim, horizon_s=0.0)
