"""PoWiFi core-mechanism tests: IP_Power gate, injector, schemes, router."""

import pytest

from repro.core.config import (
    DEFAULT_INTER_PACKET_DELAY_S,
    DEFAULT_QUEUE_THRESHOLD,
    InjectorConfig,
    Scheme,
)
from repro.core.injector import PowerInjector
from repro.core.ip_power import IpPowerGate
from repro.core.router import PoWiFiRouter, RouterConfig
from repro.core.schemes import scheme_injector_config
from repro.errors import ConfigurationError
from repro.mac80211.frames import FrameJob, FrameKind
from repro.mac80211.medium import Medium
from repro.mac80211.station import Station
from repro.packets.ipv4 import IpPowerOption, IPv4Packet
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def make_station(seed=0):
    sim = Simulator()
    streams = RandomStreams(seed)
    medium = Medium(sim, channel=1)
    station = Station(sim, name="router:ch1", streams=streams)
    medium.attach(station)
    return sim, streams, medium, station


def data_frame():
    return FrameJob(mac_bytes=1506, rate_mbps=54.0, kind=FrameKind.DATA)


class TestInjectorConfig:
    def test_paper_defaults(self):
        config = InjectorConfig()
        assert config.inter_packet_delay_s == pytest.approx(100e-6)
        assert config.queue_threshold == 5
        assert config.rate_mbps == 54.0
        assert config.ip_datagram_bytes == 1500

    def test_mac_frame_bytes(self):
        assert InjectorConfig().mac_frame_bytes == 1536

    def test_effective_period_floored_by_syscall(self):
        config = InjectorConfig(inter_packet_delay_s=1e-6, syscall_overhead_s=20e-6)
        assert config.effective_period_s == pytest.approx(20e-6)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            InjectorConfig(inter_packet_delay_s=-1.0)
        with pytest.raises(ConfigurationError):
            InjectorConfig(queue_threshold=0)
        with pytest.raises(ConfigurationError):
            InjectorConfig(rate_mbps=14.0)
        with pytest.raises(ConfigurationError):
            InjectorConfig(ip_datagram_bytes=10)


class TestIpPowerGate:
    def test_admits_below_threshold(self):
        sim, streams, medium, station = make_station()
        gate = IpPowerGate(station, queue_threshold=5)
        assert gate.admit()

    def test_drops_at_threshold(self):
        sim, streams, medium, station = make_station()
        gate = IpPowerGate(station, queue_threshold=2)
        station.enqueue(data_frame())
        station.enqueue(data_frame())
        assert not gate.admit()
        assert gate.stats.dropped == 1

    def test_none_threshold_always_admits(self):
        sim, streams, medium, station = make_station()
        gate = IpPowerGate(station, queue_threshold=None)
        for _ in range(50):
            station.enqueue(data_frame())
        assert gate.admit()

    def test_client_datagrams_never_gated(self):
        sim, streams, medium, station = make_station()
        gate = IpPowerGate(station, queue_threshold=1)
        station.enqueue(data_frame())
        client_packet = IPv4Packet(src="10.0.0.1", dst="10.0.0.9", payload=b"x")
        assert gate.check_datagram(client_packet)

    def test_power_datagrams_gated_by_bytes(self):
        sim, streams, medium, station = make_station()
        gate = IpPowerGate(station, queue_threshold=1)
        station.enqueue(data_frame())
        power_packet = IPv4Packet(
            src="10.0.0.1",
            dst="255.255.255.255",
            power_option=IpPowerOption(interface_id=0),
        )
        assert not gate.check_datagram(power_packet)

    def test_drop_fraction(self):
        sim, streams, medium, station = make_station()
        gate = IpPowerGate(station, queue_threshold=1)
        station.enqueue(data_frame())
        gate.admit()
        gate.admit()
        assert gate.stats.drop_fraction == 1.0

    def test_threshold_validation(self):
        sim, streams, medium, station = make_station()
        with pytest.raises(ConfigurationError):
            IpPowerGate(station, queue_threshold=0)


class TestPowerInjector:
    def test_keeps_queue_at_threshold(self):
        sim, streams, medium, station = make_station()
        injector = PowerInjector(sim, station, InjectorConfig())
        injector.start()
        sim.run(until=0.05)
        # The gate caps the queue depth at the threshold.
        assert station.queue.high_watermark <= DEFAULT_QUEUE_THRESHOLD + 1

    def test_sends_continuously(self):
        sim, streams, medium, station = make_station()
        injector = PowerInjector(sim, station, InjectorConfig())
        injector.start()
        sim.run(until=1.0)
        # Airtime per frame ~350 us -> about 2850 frames per second.
        assert 2000 < injector.sent < 3500

    def test_gate_drops_counted(self):
        sim, streams, medium, station = make_station()
        injector = PowerInjector(sim, station, InjectorConfig())
        injector.start()
        sim.run(until=0.2)
        # Pacing at 100 us beats the ~350 us service time, so drops happen.
        assert injector.dropped_by_gate > 0

    def test_stop_halts_injection(self):
        sim, streams, medium, station = make_station()
        injector = PowerInjector(sim, station, InjectorConfig())
        injector.start()
        sim.run(until=0.1)
        injector.stop()
        assert not injector.running
        sent = injector.sent
        sim.run(until=0.3)
        assert injector.sent <= sent + DEFAULT_QUEUE_THRESHOLD  # queue drains

    def test_retune_delay(self):
        sim, streams, medium, station = make_station()
        injector = PowerInjector(sim, station, InjectorConfig())
        injector.set_inter_packet_delay(1e-3)
        assert injector.config.inter_packet_delay_s == pytest.approx(1e-3)
        # Other parameters survive the retune.
        assert injector.config.queue_threshold == DEFAULT_QUEUE_THRESHOLD


class TestSchemes:
    def test_baseline_has_no_injector(self):
        assert scheme_injector_config(Scheme.BASELINE) is None

    def test_blind_udp_uses_1mbps_no_gate(self):
        config = scheme_injector_config(Scheme.BLIND_UDP)
        assert config.rate_mbps == 1.0
        assert config.queue_threshold is None

    def test_no_queue_uses_54mbps_no_gate(self):
        config = scheme_injector_config(Scheme.NO_QUEUE)
        assert config.rate_mbps == 54.0
        assert config.queue_threshold is None

    def test_powifi_uses_54mbps_with_gate(self):
        config = scheme_injector_config(Scheme.POWIFI)
        assert config.rate_mbps == 54.0
        assert config.queue_threshold == DEFAULT_QUEUE_THRESHOLD

    def test_equal_share_matches_neighbor(self):
        config = scheme_injector_config(Scheme.EQUAL_SHARE, equal_share_rate_mbps=11.0)
        assert config.rate_mbps == 11.0

    def test_equal_share_requires_rate(self):
        with pytest.raises(ConfigurationError):
            scheme_injector_config(Scheme.EQUAL_SHARE)


class TestRouter:
    def _media(self, sim):
        return {ch: Medium(sim, channel=ch) for ch in (1, 6, 11)}

    def test_router_builds_per_channel_pieces(self):
        sim = Simulator()
        router = PoWiFiRouter(sim, self._media(sim), RandomStreams(0))
        assert set(router.stations) == {1, 6, 11}
        assert set(router.injectors) == {1, 6, 11}
        assert set(router.beacon_sources) == {1, 6, 11}

    def test_baseline_router_has_no_injectors(self):
        sim = Simulator()
        router = PoWiFiRouter(
            sim, self._media(sim), RandomStreams(0), RouterConfig(scheme=Scheme.BASELINE)
        )
        assert router.injectors == {}

    def test_client_station_is_channel_1(self):
        sim = Simulator()
        router = PoWiFiRouter(sim, self._media(sim), RandomStreams(0))
        assert router.client_station is router.stations[1]

    def test_cumulative_occupancy_sums_channels(self):
        sim = Simulator()
        router = PoWiFiRouter(sim, self._media(sim), RandomStreams(0))
        router.start()
        sim.run(until=0.5)
        per_channel = router.occupancy_by_channel()
        assert router.cumulative_occupancy() == pytest.approx(sum(per_channel.values()))

    def test_idle_channel_occupancy_near_peak(self):
        sim = Simulator()
        router = PoWiFiRouter(sim, self._media(sim), RandomStreams(0))
        router.start()
        sim.run(until=1.0)
        for occupancy in router.occupancy_by_channel().values():
            assert 0.55 < occupancy < 0.72

    def test_missing_medium_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            PoWiFiRouter(sim, {1: Medium(sim, 1)}, RandomStreams(0))

    def test_client_channel_must_be_served(self):
        with pytest.raises(ConfigurationError):
            RouterConfig(channels=(6, 11), client_channel=1)

    def test_occupancy_series_windows(self):
        sim = Simulator()
        router = PoWiFiRouter(sim, self._media(sim), RandomStreams(0))
        router.start()
        sim.run(until=1.0)
        series = router.cumulative_occupancy_series(window_s=0.25)
        assert len(series.samples) == 4
        assert series.mean == pytest.approx(router.cumulative_occupancy(), rel=0.05)

    def test_stop_router(self):
        sim = Simulator()
        router = PoWiFiRouter(sim, self._media(sim), RandomStreams(0))
        router.start()
        sim.run(until=0.2)
        router.stop()
        sent = sum(i.sent for i in router.injectors.values())
        sim.run(until=0.5)
        after = sum(i.sent for i in router.injectors.values())
        # Queued frames (up to threshold per channel) plus one in flight per
        # channel still drain after stop; nothing more is generated.
        assert after <= sent + 3 * (DEFAULT_QUEUE_THRESHOLD + 1)
