"""Experiment-driver tests for the RF/harvester side: Figs 1, 9, 10, 11,
12, 13 and §8a — each asserts the corresponding paper claim."""

import pytest

from repro.experiments.fig01_leakage import (
    MIN_THRESHOLD_V,
    generate_bursty_schedule,
    run_fig01,
    run_fig01_powifi_contrast,
)
from repro.experiments.fig09_return_loss import run_fig09
from repro.experiments.fig10_rectifier import run_fig10
from repro.experiments.fig11_temperature import run_fig11
from repro.experiments.fig12_camera import run_fig12
from repro.experiments.fig13_walls import FIG13_MATERIALS, run_fig13
from repro.experiments.sec8a_charger import run_sec8a
from repro.errors import ConfigurationError


class TestFig01:
    def test_stock_router_never_crosses_threshold(self):
        """Fig 1 / §2: the harvester stays below 300 mV under normal
        router traffic at 10 feet."""
        result = run_fig01(duration_s=0.05)
        assert not result.crossed_threshold
        assert result.peak_voltage_v < MIN_THRESHOLD_V

    def test_harvests_during_bursts(self):
        result = run_fig01(duration_s=0.05)
        assert result.peak_voltage_v > 0.05  # visibly charging, like Fig 1

    def test_powifi_contrast_crosses_threshold(self):
        result = run_fig01_powifi_contrast(duration_s=0.05)
        assert result.crossed_threshold

    def test_higher_occupancy_higher_peak(self):
        low = run_fig01(duration_s=0.05, occupancy=0.1)
        high = run_fig01(duration_s=0.05, occupancy=0.4)
        assert high.peak_voltage_v > low.peak_voltage_v

    def test_schedule_occupancy_validation(self):
        with pytest.raises(ConfigurationError):
            generate_bursty_schedule(1.0, 0.0)

    def test_schedule_duty_matches_request(self):
        bursts = generate_bursty_schedule(5.0, 0.3, seed=1)
        busy = sum(b.duration_s for b in bursts if b.start_s < 5.0)
        assert busy / 5.0 == pytest.approx(0.3, abs=0.1)


class TestFig09:
    def test_both_variants_below_minus_10db(self):
        free, recharging = run_fig09()
        assert free.meets_spec
        assert recharging.meets_spec

    def test_power_penalty_below_half_db(self):
        for result in run_fig09():
            assert result.worst_power_penalty_db < 0.5

    def test_sweep_spans_band(self):
        free, _ = run_fig09()
        frequencies = [f for f, _ in free.sweep]
        assert min(frequencies) <= 2.401e9
        assert max(frequencies) >= 2.473e9


class TestFig10:
    def test_sensitivities_match_paper(self):
        free, recharging = run_fig10(input_powers_dbm=(-20, -10, 0, 4))
        assert free.worst_sensitivity_dbm == pytest.approx(-17.8, abs=0.8)
        assert recharging.worst_sensitivity_dbm == pytest.approx(-19.3, abs=0.8)

    def test_output_monotone_in_input(self):
        free, _ = run_fig10(input_powers_dbm=(-16, -12, -8, -4, 0, 4))
        for channel, curve in free.curves.items():
            outputs = [w for _, w in curve]
            assert outputs == sorted(outputs)

    def test_channels_agree(self):
        free, _ = run_fig10(input_powers_dbm=(0,))
        outputs = [free.output_at(ch, 0) for ch in (1, 6, 11)]
        assert max(outputs) / min(outputs) < 1.1

    def test_peak_output_in_paper_band(self):
        free, recharging = run_fig10(input_powers_dbm=(4,))
        for result in (free, recharging):
            assert 100e-6 < result.output_at(6, 4) < 250e-6


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig11()

    def test_ranges_match_paper(self, result):
        assert result.battery_free_range_feet == pytest.approx(20.0, abs=2.5)
        assert result.battery_recharging_range_feet == pytest.approx(28.0, abs=2.5)

    def test_rates_decrease_with_distance(self, result):
        # Beyond ~2 ft; at point-blank range the regulator saturates and
        # the curve flattens (the paper's sweep also starts away from 0).
        distances = [d for d in sorted(result.battery_free) if d >= 2]
        rates = [result.battery_free[d] for d in distances]
        assert rates == sorted(rates, reverse=True)

    def test_battery_build_wins_past_15ft(self, result):
        assert result.battery_recharging[18] > result.battery_free[18]

    def test_free_build_dead_past_range(self, result):
        assert result.battery_free[25] == 0.0
        assert result.battery_free[28] == 0.0

    def test_battery_build_alive_at_28ft(self, result):
        assert result.battery_recharging[28] > 0.0


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig12()

    def test_ranges_match_paper(self, result):
        assert result.battery_free_range_feet == pytest.approx(17.0, abs=2.0)
        assert 23.0 <= result.battery_recharging_range_feet <= 30.0

    def test_inter_frame_grows_with_distance(self, result):
        distances = [d for d in sorted(result.battery_free) if result.battery_free[d] != float("inf")]
        times = [result.battery_free[d] for d in distances]
        assert times == sorted(times)

    def test_free_camera_dead_at_20ft(self, result):
        assert result.battery_free[20] == float("inf")

    def test_recharging_camera_alive_at_23ft(self, result):
        assert result.battery_recharging[23] != float("inf")


class TestFig13:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig13()

    def test_camera_works_through_every_wall(self, result):
        """The Fig 13 headline: through-wall operation everywhere."""
        assert result.all_operational

    def test_absorption_ordering(self, result):
        """More absorbent materials stretch the inter-frame time."""
        times = [result.inter_frame_minutes[m] for m in FIG13_MATERIALS]
        assert times == sorted(times)

    def test_free_space_fastest(self, result):
        free_space = result.inter_frame_minutes["free-space"]
        assert all(
            free_space <= v for v in result.inter_frame_minutes.values()
        )

    def test_sheetrock_meaningfully_slower(self, result):
        assert (
            result.inter_frame_minutes["sheetrock"]
            > 2 * result.inter_frame_minutes["free-space"]
        )


class TestSec8a:
    def test_current_matches_paper(self):
        result = run_sec8a()
        assert result.average_current_ma == pytest.approx(2.3, abs=0.5)

    def test_charge_after_2_5h_matches_paper(self):
        result = run_sec8a()
        assert result.charge_percent_after == pytest.approx(41.0, abs=8.0)

    def test_longer_session_charges_more(self):
        short = run_sec8a(duration_hours=1.0)
        long = run_sec8a(duration_hours=2.5)
        assert long.charge_percent_after > short.charge_percent_after
