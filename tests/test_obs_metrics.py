"""Observability layer: instruments, registry, ledger, engine stats, CLI."""

import io
import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import runtime as obs_runtime
from repro.obs.energy import EnergyLedger
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    MetricsRegistry,
)
from repro.sim.engine import Simulator


@pytest.fixture
def registry():
    return MetricsRegistry(enabled=True)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self, registry):
        c = registry.counter("layer.component.metric")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increment(self, registry):
        c = registry.counter("a.b")
        with pytest.raises(ObservabilityError):
            c.inc(-1)

    def test_labelled_counters_are_distinct(self, registry):
        ch1 = registry.counter("mac.tx", channel=1)
        ch6 = registry.counter("mac.tx", channel=6)
        assert ch1 is not ch6
        ch1.inc(3)
        assert ch1.value == 3
        assert ch6.value == 0

    def test_same_labels_return_same_instrument(self, registry):
        a = registry.counter("mac.tx", channel=1, station="ap")
        b = registry.counter("mac.tx", station="ap", channel=1)
        assert a is b

    def test_name_validation(self, registry):
        with pytest.raises(ObservabilityError):
            registry.counter("Bad-Name")  # lint: ignore[PW006] deliberately invalid fixture
        with pytest.raises(ObservabilityError):
            registry.counter("a..b")  # lint: ignore[PW006] deliberately invalid fixture

    def test_type_conflict_is_an_error(self, registry):
        registry.counter("a.b")
        with pytest.raises(ObservabilityError):
            registry.gauge("a.b")


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("net.txqueue.depth")
        g.set(5)
        g.inc(2)
        g.dec(3)
        assert g.value == 4
        assert g.updates == 3


class TestHistogram:
    def test_bucket_edges_use_bisect_left_semantics(self, registry):
        h = registry.histogram("d", buckets=(1, 5, 10))  # lint: ignore[PW006] test-local name
        # value <= edge lands in that bucket; above the last edge overflows.
        for value in (0, 1, 2, 5, 7, 10, 11):
            h.observe(value)
        assert h.bucket_counts == [2, 2, 2, 1]
        record = h.to_record()
        assert record["buckets"] == [[1, 2], [5, 2], [10, 2], ["+inf", 1]]
        assert record["count"] == 7
        assert record["min"] == 0
        assert record["max"] == 11
        assert record["sum"] == 36

    def test_default_buckets(self, registry):
        h = registry.histogram("d2")  # lint: ignore[PW006] test-local name
        assert h.edges == tuple(float(b) for b in DEFAULT_BUCKETS)

    def test_quantiles_and_mean(self, registry):
        h = registry.histogram("q", buckets=(100,))  # lint: ignore[PW006] test-local name
        for value in range(1, 101):
            h.observe(value)
        assert h.mean == pytest.approx(50.5)
        assert h.quantile(0.0) == 1
        assert h.quantile(1.0) == 100
        assert abs(h.quantile(0.5) - 50) <= 2

    def test_empty_histogram_quantiles_are_zero(self, registry):
        h = registry.histogram("e", buckets=(1,))  # lint: ignore[PW006] test-local name
        assert h.quantile(0.0) == 0.0
        assert h.quantile(0.5) == 0.0
        assert h.quantile(1.0) == 0.0
        assert h.percentile(99.0) == 0.0
        assert h.mean == 0.0
        record = h.to_record()
        assert record["min"] == 0.0 and record["max"] == 0.0

    def test_single_sample_quantiles_return_it(self, registry):
        h = registry.histogram("s", buckets=(1,))  # lint: ignore[PW006] test-local name
        h.observe(7.25)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.quantile(q) == 7.25
        assert h.percentile(50.0) == 7.25

    def test_out_of_range_quantile_raises(self, registry):
        h = registry.histogram("b", buckets=(1,))  # lint: ignore[PW006] test-local name
        h.observe(1.0)
        for bad in (-0.1, 1.1, float("nan")):
            with pytest.raises(ObservabilityError):
                h.quantile(bad)
        for bad in (-1.0, 100.5, float("nan")):
            with pytest.raises(ObservabilityError):
                h.percentile(bad)

    def test_reservoir_stays_bounded_and_deterministic(self, registry):
        h1 = registry.histogram("r1", buckets=(10,))  # lint: ignore[PW006] test-local name
        h2 = registry.histogram("r2", buckets=(10,))  # lint: ignore[PW006] test-local name
        for value in range(10_000):
            h1.observe(value)
            h2.observe(value)
        assert h1.to_record()["count"] == 10_000
        assert h1.quantile(0.5) == h2.quantile(0.5)


class TestTimeseries:
    def test_records_samples_in_order(self, registry):
        ts = registry.timeseries("harvester.storage.voltage_v")
        ts.sample(0.0, 1.0)
        ts.sample(0.5, 1.5)
        assert ts.last == (0.5, 1.5)
        assert len(ts) == 2

    def test_time_must_not_go_backwards(self, registry):
        ts = registry.timeseries("t")  # lint: ignore[PW006] test-local name
        ts.sample(1.0, 0.0)
        with pytest.raises(ObservabilityError):
            ts.sample(0.5, 0.0)

    def test_rate_degenerate_cases_are_zero(self, registry):
        ts = registry.timeseries("r0")  # lint: ignore[PW006] test-local name
        assert ts.rate() == 0.0  # empty
        ts.sample(3.0, 42.0)
        assert ts.rate() == 0.0  # single sample
        ts.sample(3.0, 99.0)  # repeated timestamp: zero-span window
        assert ts.rate() == 0.0

    def test_rate_measures_first_to_last(self, registry):
        ts = registry.timeseries("r1")  # lint: ignore[PW006] test-local name
        ts.sample(0.0, 10.0)
        ts.sample(1.0, 0.0)
        ts.sample(5.0, 30.0)
        assert ts.rate() == pytest.approx(4.0)


class TestRegistryExport:
    def test_snapshot_json_round_trip(self, registry):
        registry.counter("a.count", channel=1).inc(2)
        registry.gauge("a.level").set(0.75)
        registry.histogram("a.dist", buckets=(1, 2)).observe(1.5)
        registry.timeseries("a.series").sample(0.0, 3.3)
        payload = json.dumps(registry.to_dict())
        restored = json.loads(payload)
        assert len(restored["metrics"]) == 4
        by_name = {record["name"]: record for record in restored["metrics"]}
        assert by_name["a.count"]["value"] == 2
        assert by_name["a.count"]["labels"] == {"channel": 1}
        assert by_name["a.dist"]["buckets"] == [[1, 0], [2, 1], ["+inf", 0]]
        assert by_name["a.series"]["samples"] == [[0.0, 3.3]]

    def test_to_jsonl_counts_lines(self, registry):
        registry.counter("x.a").inc()
        registry.counter("x.b").inc()
        buffer = io.StringIO()
        assert registry.to_jsonl(buffer) == 2
        lines = [json.loads(line) for line in buffer.getvalue().splitlines()]
        assert [record["name"] for record in lines] == ["x.a", "x.b"]

    def test_find_and_value(self, registry):
        registry.counter("mac.tx", channel=1).inc(4)
        registry.counter("mac.tx", channel=6).inc(1)
        assert len(registry.find("mac.tx")) == 2
        assert registry.value("mac.tx", channel=1) == 4


class TestNoOpMode:
    def test_disabled_registry_hands_out_null_instruments(self):
        disabled = MetricsRegistry(enabled=False)
        c = disabled.counter("a.b")
        g = disabled.gauge("a.c")
        h = disabled.histogram("a.d")
        ts = disabled.timeseries("a.e")
        c.inc(10)
        g.set(5)
        h.observe(3)
        ts.sample(0.0, 1.0)
        assert c.value == 0
        assert g.value == 0
        assert h.to_record()["count"] == 0
        assert len(ts) == 0
        assert disabled.snapshot() == []

    def test_null_instruments_are_shared_singletons(self):
        disabled = MetricsRegistry(enabled=False)
        assert disabled.counter("a.b") is disabled.counter("c.d")
        assert disabled.counter("a.b") is NULL_REGISTRY.counter("x.y")

    def test_timeseries_null_accepts_backwards_time(self):
        ts = NULL_REGISTRY.timeseries("t")  # lint: ignore[PW006] test-local name
        ts.sample(1.0, 0.0)
        ts.sample(0.0, 0.0)  # must not raise in no-op mode


class TestSimulatorStats:
    def test_counts_dispatched_and_cancelled(self):
        sim = Simulator(observe=True)
        fired = []
        sim.schedule(0.1, lambda: fired.append("a"), name="tick")
        sim.schedule(0.2, lambda: fired.append("b"), name="tick")
        doomed = sim.schedule(0.3, lambda: fired.append("c"), name="doomed")
        doomed.cancel()
        sim.run()
        assert fired == ["a", "b"]
        assert sim.stats.dispatched == 2
        assert sim.stats.cancelled == 1
        assert sim.stats.callback_counts["tick"] == 2
        assert sim.stats.callback_wall_s["tick"] >= 0.0
        assert sim.stats.heap_high_watermark == 3

    def test_stats_report_and_hot_callbacks(self):
        sim = Simulator(observe=True)
        for i in range(5):
            sim.schedule(0.1 * i, lambda: None, name="work")
        sim.run()
        hot = sim.stats.hot_callbacks(1)
        assert hot[0][0] == "work"
        assert "work" in sim.stats.report()
        as_dict = sim.stats.to_dict()
        assert as_dict["dispatched"] == 5
        json.dumps(as_dict)

    def test_unobserved_simulator_uses_null_registry(self):
        sim = Simulator(observe=False)
        c = sim.metrics.counter("a.b")
        c.inc()
        assert c.value == 0
        assert not sim.stats.profiling

    def test_on_event_hook_sees_each_dispatch(self):
        sim = Simulator(observe=False)
        seen = []
        sim.on_event = lambda event: seen.append(event.name)
        sim.schedule(0.1, lambda: None, name="first")
        sim.schedule(0.2, lambda: None, name="second")
        sim.run()
        assert seen == ["first", "second"]


class TestRuntimeAggregation:
    def setup_method(self):
        obs_runtime.configure(enabled=True)

    def teardown_method(self):
        obs_runtime.configure(enabled=True)

    def test_tracked_simulators_aggregate(self):
        for _ in range(2):
            sim = Simulator()
            sim.schedule(0.1, lambda: None, name="tick")
            sim.run()
        merged = obs_runtime.aggregate_engine_stats()
        assert merged["simulators"] == 2
        assert merged["dispatched"] == 2
        assert merged["callback_counts"]["tick"] == 2
        hot = obs_runtime.hot_callbacks()
        assert hot and hot[0]["name"] == "tick"

    def test_configure_disabled_turns_profiling_off(self):
        obs_runtime.configure(enabled=False)
        sim = Simulator()
        sim.schedule(0.1, lambda: None, name="tick")
        sim.run()
        assert not sim.stats.profiling
        assert obs_runtime.aggregate_engine_stats()["simulators"] == 0
        assert sim.metrics is obs_runtime.null_registry()


class TestEnergyLedger:
    def test_deposit_withdraw_and_net(self, registry):
        ledger = EnergyLedger(registry, chain="battery-free")
        ledger.deposit(0.0, 10e-6)
        ledger.withdraw(1.0, 2.77e-6)
        assert ledger.deposited_uj == pytest.approx(10.0)
        assert ledger.withdrawn_uj == pytest.approx(2.77)
        assert ledger.net_uj == pytest.approx(7.23)
        assert ledger.operations == 1

    def test_voltage_stride_thins_samples(self, registry):
        ledger = EnergyLedger(registry, voltage_stride=10)
        for i in range(100):
            ledger.sample_voltage(0.01 * i, 1.0 + 0.01 * i)
        assert ledger.voltage_samples == 10
        assert ledger.last_voltage() == pytest.approx(1.90)

    def test_negative_flows_rejected(self, registry):
        ledger = EnergyLedger(registry)
        with pytest.raises(ObservabilityError):
            ledger.deposit(0.0, -1.0)
        with pytest.raises(ObservabilityError):
            ledger.withdraw(0.0, -1.0)

    def test_sensor_load_consume_records_operations(self, registry):
        from repro.sensors.mcu import TEMPERATURE_LOAD

        ledger = EnergyLedger(registry)
        energy = TEMPERATURE_LOAD.consume(ledger, 0.0, operations=3)
        assert energy == pytest.approx(3 * 2.77e-6)
        assert ledger.operations == 3
        assert ledger.withdrawn_uj == pytest.approx(3 * 2.77)

    def test_duty_cycle_simulator_feeds_ledger(self, registry):
        from repro.harvester.harvester import battery_free_harvester
        from repro.sensors.duty_cycle import DutyCycleSimulator

        ledger = EnergyLedger(registry, voltage_stride=100)
        sim = DutyCycleSimulator(
            battery_free_harvester(),
            received_power_dbm=-8.0,
            operation_energy_j=2.77e-6,
            ledger=ledger,
        )
        result = sim.run_constant(duration_s=20.0, occupancy=1.0)
        assert result.count >= 1
        assert ledger.operations == result.count
        assert ledger.deposited_uj > 0
        assert ledger.voltage_samples >= 1


class TestCliObservability:
    def setup_method(self):
        obs_runtime.configure(enabled=True)

    def teardown_method(self):
        obs_runtime.configure(enabled=True)

    def test_normalize_experiment_id(self):
        from repro.cli import normalize_experiment_id

        assert normalize_experiment_id("fig07") == "fig7"
        assert normalize_experiment_id("fig06a") == "fig6a"
        assert normalize_experiment_id("fig10") == "fig10"
        assert normalize_experiment_id("table1") == "table1"
        assert normalize_experiment_id("quickstart") == "quickstart"

    def test_metrics_subcommand_writes_jsonl(self, tmp_path, capsys):
        from repro.cli import main

        output = tmp_path / "metrics.jsonl"
        assert main(["metrics", "fig07", "--output", str(output)]) == 0
        records = [
            json.loads(line) for line in output.read_text().splitlines()
        ]
        assert records, "metrics export must not be empty"
        assert records[-1]["type"] == "engine"
        assert records[-1]["dispatched"] > 0
        assert records[-1]["callback_counts"]
        names = {record.get("name") for record in records}
        assert "core.occupancy.fraction" in names
        assert "net.txqueue.depth" in names
        assert "mac.medium.collisions" in names
        assert "== fig7 metrics ==" in capsys.readouterr().out

    def test_metrics_subcommand_no_obs(self, tmp_path):
        from repro.cli import main

        output = tmp_path / "noobs.jsonl"
        assert main(["metrics", "fig1", "--no-obs", "--output", str(output)]) == 0
        records = [
            json.loads(line) for line in output.read_text().splitlines()
        ]
        # Only the (empty) engine summary line survives in no-obs mode.
        assert [record["type"] for record in records] == ["engine"]
        assert records[0]["simulators"] == 0

    def test_trace_subcommand_filters_kinds(self, tmp_path, capsys):
        from repro.cli import main

        output = tmp_path / "trace.jsonl"
        code = main(
            ["trace", "fig7", "--kinds", "mac.tx", "--output", str(output)]
        )
        assert code == 0
        records = [
            json.loads(line) for line in output.read_text().splitlines()
        ]
        assert records
        assert {record["kind"] for record in records} == {"mac.tx"}
        assert {"time", "source", "kind", "fields"} <= set(records[0])

    def test_unknown_experiment_rejected(self, capsys):
        from repro.cli import main

        assert main(["metrics", "fig99"]) == 2


class TestHistogramPercentile:
    def test_percentile_matches_quantile(self, registry):
        h = registry.histogram("a.wall_s", buckets=(0.1, 1.0))
        for value in range(1, 11):
            h.observe(float(value))
        assert h.percentile(50.0) == h.quantile(0.5) == 6.0
        assert h.percentile(0.0) == 1.0
        assert h.percentile(100.0) == 10.0

    def test_percentile_of_empty_histogram_is_zero(self, registry):
        assert registry.histogram("a.b").percentile(95.0) == 0.0

    def test_percentile_range_enforced(self, registry):
        h = registry.histogram("a.b")
        with pytest.raises(ObservabilityError, match=r"\[0, 100\]"):
            h.percentile(101.0)
        with pytest.raises(ObservabilityError, match=r"\[0, 100\]"):
            h.percentile(-1.0)


class TestTimeseriesRate:
    def test_rate_is_slope_over_window(self, registry):
        ts = registry.timeseries("a.level")
        ts.sample(0.0, 1.0)
        ts.sample(2.0, 2.0)
        ts.sample(4.0, 9.0)
        assert ts.rate() == pytest.approx(2.0)

    def test_rate_degenerate_windows_are_zero(self, registry):
        ts = registry.timeseries("a.level")
        assert ts.rate() == 0.0
        ts.sample(1.0, 5.0)
        assert ts.rate() == 0.0  # one sample
        ts.sample(1.0, 9.0)
        assert ts.rate() == 0.0  # repeated timestamp: zero-width window


class TestEnergyLedgerEdgeCases:
    """Satellite: zero-duration intervals and round-off negative drains."""

    def test_zero_duration_interval_contributes_zero(self, registry):
        ledger = EnergyLedger(registry)
        ledger.deposit(0.0, 0.0)
        ledger.withdraw(0.0, 0.0, operation=False)
        assert ledger.deposited_uj == 0.0
        assert ledger.withdrawn_uj == 0.0
        assert ledger.net_uj == 0.0
        assert ledger.operations == 0

    def test_roundoff_negative_drain_clamps_to_zero(self, registry):
        from repro.obs.energy import NEGATIVE_FLOW_CLAMP_J

        ledger = EnergyLedger(registry)
        ledger.deposit(0.0, -1e-18)  # integrator round-off
        ledger.withdraw(0.1, -NEGATIVE_FLOW_CLAMP_J)  # exactly on the band edge
        assert ledger.deposited_uj == 0.0
        assert ledger.withdrawn_uj == 0.0

    def test_genuine_negative_flow_still_raises(self, registry):
        from repro.obs.energy import NEGATIVE_FLOW_CLAMP_J

        ledger = EnergyLedger(registry)
        with pytest.raises(ObservabilityError, match="cannot deposit"):
            ledger.deposit(0.0, -2 * NEGATIVE_FLOW_CLAMP_J)
        with pytest.raises(ObservabilityError, match="cannot withdraw"):
            ledger.withdraw(0.0, -1e-6)

    def test_voltage_rate_delegates_to_timeseries(self, registry):
        ledger = EnergyLedger(registry)
        assert ledger.voltage_rate_v_per_s() == 0.0
        ledger.sample_voltage(0.0, 1.0)
        assert ledger.voltage_rate_v_per_s() == 0.0
        ledger.sample_voltage(10.0, 3.0)
        assert ledger.voltage_rate_v_per_s() == pytest.approx(0.2)


class TestSimulatorStatsSummary:
    def test_summary_reflects_a_real_run(self):
        obs_runtime.configure(enabled=True)
        try:
            sim = Simulator()
            for i in range(4):
                sim.schedule(0.1 * i, lambda: None, name="tick")
            sim.run()
            text = sim.stats.summary()
            assert text.startswith("dispatched=4 cancelled=0 ")
            assert "heap_high=" in text and "callbacks=1" in text
            assert text.endswith("s") and "wall=" in text
        finally:
            obs_runtime.configure(enabled=True)

    def test_summary_formatting_is_stable(self):
        from repro.sim.engine import SimulatorStats

        stats = SimulatorStats()
        stats.dispatched, stats.cancelled = 7, 2
        stats.heap_high_watermark = 5
        assert (
            stats.summary()
            == "dispatched=7 cancelled=2 heap_high=5 callbacks=0 wall=0.0000s"
        )
