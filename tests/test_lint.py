"""Tests for ``repro.lint``: per-rule fixtures (true positive, clean, and
pragma-suppressed for each PW code), the engine/pragma/baseline/config
machinery, the CLI subcommand, and the self-clean gate on ``src/repro``."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import LintConfig, Severity, all_rules, get_rule, lint_source
from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.cli import main as lint_main
from repro.lint.config import _parse_toml_subset, load_config
from repro.lint.engine import active_errors, lint_paths
from repro.lint.findings import Finding, render_json, render_text
from repro.lint.pragmas import collect_pragmas, is_suppressed
from repro.lint.rules import module_name_for

REPO_ROOT = Path(__file__).resolve().parent.parent

#: A module path inside the simulation scope (PW001/PW003 apply).
SIM_MODULE = "repro.sim.snippet"
#: A module path outside it (driver-level code).
DRIVER_MODULE = "repro.experiments.snippet"


def run_lint(source, module=SIM_MODULE, config=None):
    return lint_source(textwrap.dedent(source), module=module, config=config)


def codes(findings):
    return [f.code for f in findings]


class TestRegistry:
    def test_all_six_rules_registered(self):
        assert [r.code for r in all_rules()] == [
            "PW001", "PW002", "PW003", "PW004", "PW005", "PW006",
        ]

    def test_get_rule_and_unknown(self):
        assert get_rule("pw002").code == "PW002"
        with pytest.raises(KeyError):
            get_rule("PW999")

    def test_rules_have_docs_and_names(self):
        for rule in all_rules():
            assert rule.name and rule.description and rule.__doc__


class TestPW001WallClock:
    def test_true_positive_time_call(self):
        findings = run_lint(
            """
            import time

            def stamp():
                return time.time()
            """
        )
        assert codes(findings) == ["PW001"]

    def test_true_positive_import_and_datetime(self):
        findings = run_lint(
            """
            from time import perf_counter
            from datetime import datetime

            def stamp():
                return datetime.now()
            """
        )
        assert codes(findings) == ["PW001", "PW001"]

    def test_true_positive_urandom(self):
        findings = run_lint("import os\nseed = os.urandom(8)\n")
        assert codes(findings) == ["PW001"]

    def test_clean_outside_sim_packages(self):
        findings = run_lint(
            "import time\n\ndef stamp():\n    return time.time()\n",
            module=DRIVER_MODULE,
        )
        assert findings == []

    def test_clean_sim_now(self):
        findings = run_lint(
            """
            def tick(sim):
                return sim.now + 1.0
            """
        )
        assert findings == []

    def test_pragma_suppression(self):
        findings = run_lint(
            """
            import time

            def stamp():
                return time.time()  # lint: ignore[PW001] profiling only
            """
        )
        assert findings == []


class TestPW002SeededRng:
    def test_true_positive_bare_random(self):
        findings = run_lint("import random\nrng = random.Random(7)\n")
        assert codes(findings) == ["PW002"]

    def test_true_positive_module_level_draw(self):
        findings = run_lint(
            "import random\n\ndef draw():\n    return random.expovariate(2.0)\n"
        )
        assert codes(findings) == ["PW002"]

    def test_true_positive_from_import_draw(self):
        findings = run_lint(
            "from random import uniform\n\ndef draw():\n    return uniform(0, 1)\n"
        )
        assert codes(findings) == ["PW002"]

    def test_true_positive_aliased_module(self):
        findings = run_lint(
            "import random as rnd\n\ndef draw():\n    return rnd.gauss(0, 1)\n"
        )
        assert codes(findings) == ["PW002"]

    def test_clean_injected_rng_and_annotation(self):
        findings = run_lint(
            """
            import random

            def draw(rng: random.Random) -> float:
                return rng.expovariate(2.0)
            """
        )
        assert findings == []

    def test_clean_inside_rng_module(self):
        findings = run_lint(
            "import random\nstream = random.Random(1)\n",
            module="repro.sim.rng",
        )
        assert findings == []

    def test_pragma_suppression(self):
        findings = run_lint(
            "import random\nrng = random.Random(7)  # lint: ignore[PW002]\n"
        )
        assert findings == []


class TestPW003SetIteration:
    def test_true_positive_for_over_set_call(self):
        findings = run_lint(
            """
            def drain(stations):
                for s in set(stations):
                    s.tick()
            """
        )
        assert codes(findings) == ["PW003"]

    def test_true_positive_comprehension_over_frozenset(self):
        findings = run_lint(
            "def names(items):\n    return [i.name for i in frozenset(items)]\n"
        )
        assert codes(findings) == ["PW003"]

    def test_true_positive_set_literal(self):
        findings = run_lint("for channel in {1, 6, 11}:\n    print(channel)\n")
        assert codes(findings) == ["PW003"]

    def test_clean_sorted_set(self):
        findings = run_lint(
            """
            def drain(stations):
                for s in sorted(set(stations)):
                    s.tick()
            """
        )
        assert findings == []

    def test_clean_outside_sim_packages(self):
        findings = run_lint(
            "def drain(xs):\n    for x in set(xs):\n        x.tick()\n",
            module=DRIVER_MODULE,
        )
        assert findings == []

    def test_pragma_suppression(self):
        findings = run_lint(
            """
            def drain(stations):
                for s in set(stations):  # lint: ignore[PW003] order-free sum
                    s.tick()
            """
        )
        assert findings == []


class TestPW004UnitSuffix:
    def test_true_positive_keyword_mismatch(self):
        findings = run_lint(
            """
            def run(configure, tx_mw):
                configure(power_dbm=tx_mw)
            """
        )
        assert codes(findings) == ["PW004"]

    def test_true_positive_positional_local_function(self):
        findings = run_lint(
            """
            def set_power(level_dbm):
                return level_dbm

            def run(tx_mw):
                return set_power(tx_mw)
            """
        )
        assert codes(findings) == ["PW004"]

    def test_true_positive_method_positional(self):
        findings = run_lint(
            """
            class Radio:
                def tune(self, freq_mhz):
                    return freq_mhz

                def scan(self, freq_hz):
                    return self.tune(freq_hz)
            """
        )
        assert codes(findings) == ["PW004"]

    def test_true_positive_addition_and_comparison(self):
        findings = run_lint(
            """
            def budget(rx_dbm, leak_mw, range_ft, range_m):
                total = rx_dbm + leak_mw
                return total if range_ft < range_m else 0.0
            """
        )
        assert codes(findings) == ["PW004", "PW004"]

    def test_clean_log_domain_link_budget(self):
        findings = run_lint(
            """
            def budget(tx_dbm, gain_dbi, path_loss_db):
                return tx_dbm + gain_dbi - path_loss_db
            """
        )
        assert findings == []

    def test_clean_converted_argument(self):
        findings = run_lint(
            """
            from repro.units import watts_to_dbm

            def run(configure, tx_w):
                configure(power_dbm=watts_to_dbm(tx_w))
            """
        )
        assert findings == []

    def test_clean_matching_suffixes(self):
        findings = run_lint(
            """
            def run(configure, tx_dbm, floor_dbm):
                configure(power_dbm=tx_dbm)
                return tx_dbm > floor_dbm
            """
        )
        assert findings == []

    def test_pragma_suppression(self):
        findings = run_lint(
            """
            def run(configure, tx_mw):
                configure(power_dbm=tx_mw)  # lint: ignore[PW004] raw probe
            """
        )
        assert findings == []


class TestPW005FloatTimeEquality:
    def test_true_positive_equality_on_seconds(self):
        findings = run_lint(
            """
            def at_end(t_s, end_s):
                return t_s == end_s
            """
        )
        assert codes(findings) == ["PW005"]

    def test_true_positive_not_equal_now(self):
        findings = run_lint(
            "def moved(sim, start_time):\n    return sim.now != start_time\n"
        )
        assert codes(findings) == ["PW005"]

    def test_clean_ordering_and_isclose(self):
        findings = run_lint(
            """
            import math

            def at_end(t_s, end_s):
                return t_s >= end_s or math.isclose(t_s, end_s)
            """
        )
        assert findings == []

    def test_clean_string_comparison_on_suffixed_name(self):
        # ``kind_s == "busy"`` compares names, not times.
        findings = run_lint(
            "def busy(kind_s):\n    return kind_s == \"busy\"\n"
        )
        assert findings == []

    def test_pragma_suppression(self):
        findings = run_lint(
            """
            def at_end(t_s, end_s):
                return t_s == end_s  # lint: ignore[PW005] exact sentinel
            """
        )
        assert findings == []


class TestPW006MetricNames:
    def test_true_positive_fstring_name(self):
        findings = run_lint(
            """
            def instrument(registry, channel):
                return registry.counter(f"mac.ch{channel}.tx")
            """
        )
        assert codes(findings) == ["PW006"]

    def test_true_positive_bad_format(self):
        findings = run_lint(
            "def instrument(registry):\n    return registry.gauge('BadName')\n"
        )
        assert codes(findings) == ["PW006"]

    def test_true_positive_single_segment(self):
        findings = run_lint(
            "def instrument(registry):\n    return registry.histogram('depth')\n"
        )
        assert codes(findings) == ["PW006"]

    def test_clean_dotted_literal_with_labels(self):
        findings = run_lint(
            """
            def instrument(registry, channel):
                return registry.counter("mac.medium.collisions", channel=channel)
            """
        )
        assert findings == []

    def test_clean_exempt_inside_metrics_module(self):
        findings = run_lint(
            "def fetch(self, name):\n    return self.counter(name)\n",
            module="repro.obs.metrics",
        )
        assert findings == []

    def test_pragma_suppression(self):
        findings = run_lint(
            """
            def instrument(registry, channel):
                return registry.counter(f"mac.ch{channel}.tx")  # lint: ignore[PW006]
            """
        )
        assert findings == []


class TestPW006SpanNames:
    """The span-tracing extension: span names are literals too."""

    def test_true_positive_bad_span_name(self):
        findings = run_lint(
            "def trace(spans):\n    return spans.begin('BadName')\n"
        )
        assert codes(findings) == ["PW006"]

    def test_true_positive_single_segment_context_manager(self):
        findings = run_lint(
            """
            def trace(runtime):
                with runtime.span("work"):
                    pass
            """
        )
        assert codes(findings) == ["PW006"]

    def test_clean_dotted_span_with_labels(self):
        findings = run_lint(
            """
            def trace(spans, channel):
                with spans.span("mac.medium.busy", channel=channel):
                    pass
            """
        )
        assert findings == []

    def test_clean_foreign_span_method_non_string(self):
        """``re.Match.span(0)`` and friends must not false-positive."""
        findings = run_lint(
            "def bounds(match):\n    return match.span(0)\n"
        )
        assert findings == []

    def test_clean_exempt_inside_spans_module(self):
        findings = run_lint(
            "def reopen(self, name):\n    return self.begin(name)\n",
            module="repro.obs.spans",
        )
        assert findings == []


class TestPW006SloObjectives:
    """The SLO extension: objective ids are literals at call sites and in
    ``slos/*.json`` spec files."""

    def test_true_positive_non_dotted_id(self):
        findings = run_lint(
            """
            from repro.obs.slo import objective

            OBJ = objective("BadName", "channel.occupancy.cumulative.mean")
            """,
            module=DRIVER_MODULE,
        )
        assert codes(findings) == ["PW006"]

    def test_true_positive_dynamic_id(self):
        findings = run_lint(
            """
            from repro.obs.slo import objective

            def build(name):
                return objective(name, "channel.occupancy.cumulative.mean")
            """,
            module=DRIVER_MODULE,
        )
        assert codes(findings) == ["PW006"]

    def test_true_positive_module_alias_and_kwarg(self):
        findings = run_lint(
            """
            from repro.obs import slo

            A = slo.objective("nodots", "a.b")
            B = slo.objective(objective_id="also bad", metric="a.b")
            """,
            module=DRIVER_MODULE,
        )
        assert codes(findings) == ["PW006", "PW006"]

    def test_clean_dotted_objective(self):
        findings = run_lint(
            """
            from repro.obs.slo import objective

            OBJ = objective(
                "client.plt.powifi_delta",
                "client.plt.powifi_delta_s",
                op="<=",
                value=0.5,
            )
            """,
            module=DRIVER_MODULE,
        )
        assert findings == []

    def test_clean_foreign_objective_function(self):
        """A local function named ``objective`` is not the SLO factory."""
        findings = run_lint(
            """
            def objective(x):
                return x

            VALUE = objective("whatever")
            """,
            module=DRIVER_MODULE,
        )
        assert findings == []

    def test_clean_exempt_inside_slo_module(self):
        findings = run_lint(
            """
            from repro.obs.slo import objective

            def rebuild(objective_id, metric):
                return objective(objective_id, metric)
            """,
            module="repro.obs.slo",
        )
        assert findings == []

    def test_spec_file_bad_id_flagged_with_line(self):
        from repro.lint.checks import check_slo_spec_file

        source = (
            '{\n  "schema": 1,\n  "experiment": "fig7",\n  "objectives": [\n'
            '    {"id": "BadName", "metric": "a.b", "kind": "threshold",\n'
            '     "op": ">=", "value": 1.0}\n  ]\n}\n'
        )
        findings = check_slo_spec_file("slos/demo.json", source)
        assert codes(findings) == ["PW006"]
        assert findings[0].line == 5
        assert "BadName" in findings[0].message

    def test_spec_file_clean_and_invalid_json(self):
        from repro.lint.checks import check_slo_spec_file

        clean = (
            '{"schema": 1, "experiment": "fig7", "objectives": ['
            '{"id": "channel.occupancy.cumulative_mean", "metric": "a.b",'
            ' "kind": "threshold", "op": ">=", "value": 1.0}]}'
        )
        assert check_slo_spec_file("slos/fig7.json", clean) == []
        broken = check_slo_spec_file("slos/bad.json", "{oops")
        assert codes(broken) == ["PW006"]
        assert "not valid JSON" in broken[0].message

    def test_repo_spec_files_are_clean(self):
        from repro.lint.checks import check_slo_spec_file

        spec_dir = REPO_ROOT / "slos"
        spec_paths = sorted(spec_dir.glob("*.json"))
        assert spec_paths, "repo ships default SLO specs"
        for path in spec_paths:
            assert check_slo_spec_file(str(path), path.read_text()) == []

    def test_lint_paths_walks_slos_dir(self, tmp_path):
        from repro.lint.config import LintConfig
        from repro.lint.engine import lint_paths

        spec_dir = tmp_path / "slos"
        spec_dir.mkdir()
        (spec_dir / "demo.json").write_text(
            '{"schema": 1, "experiment": "fig7", "objectives": ['
            '{"id": "NotDotted", "metric": "a.b", "kind": "threshold",'
            ' "op": ">=", "value": 1.0}]}'
        )
        (tmp_path / "other.json").write_text("{}")  # not under slos/: ignored
        findings = lint_paths(
            [str(tmp_path)], config=LintConfig(), use_baseline=False
        )
        assert codes(findings) == ["PW006"]
        assert findings[0].path.endswith("demo.json")


class TestPragmas:
    def test_bare_ignore_suppresses_everything(self):
        findings = run_lint(
            "import random\nrng = random.Random(7)  # lint: ignore\n"
        )
        assert findings == []

    def test_multi_code_pragma(self):
        pragmas = collect_pragmas("x = 1  # lint: ignore[PW001, PW005] why\n")
        assert is_suppressed(pragmas, 1, "PW001")
        assert is_suppressed(pragmas, 1, "pw005")
        assert not is_suppressed(pragmas, 1, "PW002")
        assert not is_suppressed(pragmas, 2, "PW001")

    def test_pragma_inside_string_is_not_a_pragma(self):
        source = 'text = "# lint: ignore[PW002]"\nimport random\nrng = random.Random(7)\n'
        assert codes(lint_source(source)) == ["PW002"]

    def test_pragma_on_other_line_does_not_suppress(self):
        findings = run_lint(
            """
            # lint: ignore[PW002]
            import random
            rng = random.Random(7)
            """
        )
        assert codes(findings) == ["PW002"]

    def test_pragma_covers_whole_multiline_statement(self):
        # The pragma sits on the closing line; the finding anchors on the
        # first line of the call. Logical-extent attachment must bridge it.
        findings = run_lint(
            """
            import random
            rng = random.Random(
                7,
            )  # lint: ignore[PW002] seeded fixture
            """
        )
        assert findings == []

    def test_pragma_on_interior_continuation_line(self):
        findings = run_lint(
            """
            import random
            rng = random.Random(
                7,  # lint: ignore[PW002] seeded fixture
            )
            """
        )
        assert findings == []

    def test_decorator_pragma_does_not_leak_into_def(self):
        source = "@decorate  # lint: ignore[PW001]\ndef f():\n    pass\n"
        pragmas = collect_pragmas(source)
        assert is_suppressed(pragmas, 1, "PW001")
        assert not is_suppressed(pragmas, 2, "PW001")

    def test_def_pragma_does_not_leak_into_decorator(self):
        source = "@decorate\ndef f():  # lint: ignore[PW001]\n    pass\n"
        pragmas = collect_pragmas(source)
        assert not is_suppressed(pragmas, 1, "PW001")
        assert is_suppressed(pragmas, 2, "PW001")
        assert not is_suppressed(pragmas, 3, "PW001")

    def test_pragma_embedded_in_a_longer_comment(self):
        findings = run_lint(
            "import random\n"
            "rng = random.Random(7)  # seeded fixture; lint: ignore[PW002]\n"
        )
        assert findings == []

    def test_prose_mentioning_the_pragma_is_not_a_pragma(self):
        findings = run_lint(
            "import random\n"
            "rng = random.Random(7)  # do not lint: ignore[PW002] here\n"
        )
        assert codes(findings) == ["PW002"]

    def test_unrelated_comment_does_not_extend_suppression(self):
        # A plain comment inside the statement must not turn the earlier
        # pragma-free lines into suppressed ones.
        findings = run_lint(
            """
            import random
            rng = random.Random(
                7,  # the seed
            )
            """
        )
        assert codes(findings) == ["PW002"]


class TestEngineAndFindings:
    def test_syntax_error_is_a_finding_not_a_crash(self):
        findings = lint_source("def broken(:\n")
        assert codes(findings) == ["PW000"]
        assert findings[0].severity is Severity.ERROR

    def test_fingerprint_ignores_line_number(self):
        before = lint_source("import random\nrng = random.Random(7)\n", path="m.py")
        after = lint_source(
            "import random\n\n\nrng = random.Random(7)\n", path="m.py"
        )
        assert before[0].line != after[0].line
        assert before[0].fingerprint == after[0].fingerprint

    def test_duplicate_lines_get_distinct_fingerprints(self):
        source = "import random\na = random.Random(1)\na = random.Random(1)\n"
        findings = lint_source(source)
        assert len(findings) == 2
        assert findings[0].fingerprint != findings[1].fingerprint

    def test_render_text_and_json(self):
        findings = lint_source("import random\nrng = random.Random(7)\n")
        text = render_text(findings)
        assert "PW002" in text and "1 finding(s)" in text
        payload = json.loads(render_json(findings))
        assert payload["active"] == 1
        assert payload["findings"][0]["code"] == "PW002"

    def test_module_name_for(self):
        path = Path("src/repro/sim/engine.py")
        assert module_name_for(path) == "repro.sim.engine"
        assert module_name_for(Path("src/repro/lint/__init__.py")) == "repro.lint"

    def test_lint_paths_excludes_and_relative_paths(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        bad = "import random\nrng = random.Random(7)\n"
        (tmp_path / "pkg" / "a.py").write_text(bad)
        (tmp_path / "pkg" / "skipme.py").write_text(bad)
        config = LintConfig(root=tmp_path, exclude=("pkg/skipme.py",))
        findings = lint_paths([str(tmp_path / "pkg")], config=config)
        assert codes(findings) == ["PW002"]
        assert findings[0].path == "pkg/a.py"


class TestBaseline:
    def test_roundtrip_grandfathers_findings(self, tmp_path):
        findings = lint_source(
            "import random\nrng = random.Random(7)\n", path="pkg/a.py"
        )
        baseline_path = tmp_path / "baseline.json"
        write_baseline(findings, baseline_path)
        known = load_baseline(baseline_path)
        assert len(known) == 1
        refreshed = lint_source(
            "import random\nrng = random.Random(7)\n", path="pkg/a.py"
        )
        apply_baseline(refreshed, known)
        assert refreshed[0].baselined
        assert active_errors(refreshed) == []

    def test_new_finding_is_not_grandfathered(self, tmp_path):
        old = lint_source("import random\na = random.Random(1)\n", path="a.py")
        baseline_path = tmp_path / "baseline.json"
        write_baseline(old, baseline_path)
        new = lint_source("import random\na = random.Random(2)\n", path="a.py")
        apply_baseline(new, load_baseline(baseline_path))
        assert not new[0].baselined

    def test_missing_baseline_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == {}

    def test_entries_have_justification_field(self, tmp_path):
        findings = lint_source("import random\na = random.Random(1)\n", path="a.py")
        baseline_path = tmp_path / "b.json"
        write_baseline(findings, baseline_path)
        entry = json.loads(baseline_path.read_text())["entries"][0]
        assert "justification" in entry


class TestConfig:
    def test_defaults(self):
        config = LintConfig()
        assert "mac80211" in config.sim_packages
        assert config.rng_module == "repro.sim.rng"
        assert config.rule_enabled("PW001")

    def test_toml_subset_parser(self):
        data = _parse_toml_subset(
            textwrap.dedent(
                """
                [project]
                name = "repro"

                [tool.repro-lint]
                rng-module = "repro.sim.rng"
                sim-packages = [
                    "sim",
                    "core",
                ]
                disable = ["PW004"]

                [tool.repro-lint.severity]
                PW003 = "warning"
                """
            )
        )
        table = data["tool"]["repro-lint"]
        assert table["rng-module"] == "repro.sim.rng"
        assert table["sim-packages"] == ["sim", "core"]
        assert table["disable"] == ["PW004"]
        assert table["severity"]["PW003"] == "warning"

    def test_load_config_from_pyproject(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            textwrap.dedent(
                """
                [tool.repro-lint]
                sim-packages = ["sim"]
                baseline = "custom_baseline.json"
                disable = ["PW006"]

                [tool.repro-lint.severity]
                PW003 = "warning"
                """
            )
        )
        config = load_config(start=tmp_path)
        assert config.sim_packages == ("sim",)
        assert config.baseline_path == tmp_path / "custom_baseline.json"
        assert not config.rule_enabled("PW006")
        assert config.severity_for("PW003", Severity.ERROR) is Severity.WARNING

    def test_disabled_rule_and_severity_override(self):
        config = LintConfig(
            disable=("PW002",),
            severity_overrides={"PW005": Severity.WARNING},
        )
        findings = run_lint(
            """
            import random

            def run(t_s, end_s):
                rng = random.Random(7)
                return t_s == end_s
            """,
            config=config,
        )
        assert codes(findings) == ["PW005"]
        assert findings[0].severity is Severity.WARNING
        assert active_errors(findings) == []

    def test_repo_pyproject_declares_lint_table(self):
        config = load_config(pyproject=REPO_ROOT / "pyproject.toml")
        assert config.root == REPO_ROOT
        assert set(config.sim_packages) >= {"sim", "mac80211", "core"}
        assert config.baseline == "lint_baseline.json"

    def test_tree_rules_parsed_from_pyproject(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            textwrap.dedent(
                """
                [tool.repro-lint]
                sim-packages = ["sim"]

                [tool.repro-lint.tree-rules]
                tests = ["PW001", "pw006"]
                """
            )
        )
        config = load_config(start=tmp_path)
        assert config.tree_rules == {"tests": ("PW001", "PW006")}

    def test_codes_for_display_path(self):
        config = LintConfig(tree_rules={"tests": ("PW001", "PW006")})
        # Listed tree: the subset plus the always-on syntax check.
        assert config.codes_for_display_path("tests/test_x.py") == (
            "PW000", "PW001", "PW006",
        )
        # Unlisted tree: no restriction at all.
        assert config.codes_for_display_path("src/repro/sim/engine.py") is None

    def test_tree_rules_filter_findings_per_tree(self, tmp_path):
        # The same PW002 source is restricted in tests/ but not in src/.
        snippet = "import random\nrng = random.Random(7)\n"
        for tree in ("src", "tests"):
            (tmp_path / tree).mkdir()
            (tmp_path / tree / "mod.py").write_text(snippet)
        config = LintConfig(
            tree_rules={"tests": ("PW001",)}, root=tmp_path
        )
        findings = lint_paths(
            [tmp_path / "src", tmp_path / "tests"],
            config=config,
            use_baseline=False,
        )
        assert [(f.path, f.code) for f in findings] == [
            ("src/mod.py", "PW002"),
        ]

    def test_repo_tree_rules_keep_flow_codes_off_tests(self):
        config = load_config(pyproject=REPO_ROOT / "pyproject.toml")
        codes = config.codes_for_display_path("tests/test_lint.py")
        assert codes is not None
        assert not any(c.startswith("PW1") for c in codes)


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("VALUE = 1\n")
        assert lint_main([str(target), "--no-baseline"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_violation_exits_one_text_and_json(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("import random\nrng = random.Random(7)\n")
        assert lint_main([str(target), "--no-baseline"]) == 1
        assert "PW002" in capsys.readouterr().out
        assert lint_main([str(target), "--no-baseline", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["active"] == 1

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("import random\nrng = random.Random(7)\n")
        baseline = tmp_path / "baseline.json"
        assert (
            lint_main([str(target), "--baseline", str(baseline), "--write-baseline"])
            == 0
        )
        capsys.readouterr()
        assert lint_main([str(target), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "[baselined]" in out

    def test_repro_cli_dispatches_lint_subcommand(self, capsys):
        from repro.cli import main as repro_main

        code = repro_main(["lint", str(REPO_ROOT / "src" / "repro" / "units.py")])
        assert code == 0
        assert "finding(s)" in capsys.readouterr().out


class TestSelfClean:
    def test_src_repro_has_zero_active_findings(self):
        """The merged tree lints clean: every finding fixed or baselined."""
        config = load_config(pyproject=REPO_ROOT / "pyproject.toml")
        findings = lint_paths([str(REPO_ROOT / "src" / "repro")], config=config)
        assert active_errors(findings) == [], render_text(findings)

    def test_baseline_entries_all_have_justifications(self):
        known = load_baseline(REPO_ROOT / "lint_baseline.json")
        assert known, "expected the committed baseline to exist"
        for entry in known.values():
            assert str(entry.get("justification", "")).strip(), entry


class TestNoCollisionWithAnalysis:
    def test_lint_and_analysis_import_side_by_side(self):
        import repro.analysis as analysis
        import repro.lint as lint

        assert analysis.__name__ == "repro.analysis"
        assert lint.__name__ == "repro.lint"
        # The statistics module keeps its surface; the linter keeps its own.
        assert hasattr(analysis, "empirical_cdf")
        assert hasattr(lint, "lint_paths")
        assert not hasattr(analysis, "lint_paths")
