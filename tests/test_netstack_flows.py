"""Transport-layer flow tests: UDP CBR, TCP Reno, iperf, page loads."""

import pytest

from repro.errors import ConfigurationError
from repro.mac80211.medium import Medium
from repro.mac80211.station import Station
from repro.netstack.http import PageLoadHarness, WebObject, WebPage
from repro.netstack.iperf import IperfTcpClient, IperfUdpClient
from repro.netstack.tcp import TcpFlow, TcpParameters
from repro.netstack.udp import UdpFlow
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def wireless_hop(seed=0):
    sim = Simulator()
    streams = RandomStreams(seed)
    medium = Medium(sim, channel=1)
    ap = Station(sim, name="ap", streams=streams)
    client = Station(sim, name="client", streams=streams)
    medium.attach(ap)
    medium.attach(client)
    return sim, ap, client


class TestUdpFlow:
    def test_low_rate_fully_delivered(self):
        sim, ap, client = wireless_hop()
        flow = UdpFlow(sim, ap, target_rate_mbps=5.0)
        flow.start()
        sim.run(until=2.0)
        assert flow.delivered_mbps(0.0, 2.0) == pytest.approx(5.0, rel=0.05)

    def test_saturation_caps_throughput(self):
        sim, ap, client = wireless_hop()
        flow = UdpFlow(sim, ap, target_rate_mbps=50.0)
        flow.start()
        sim.run(until=2.0)
        achieved = flow.delivered_mbps(0.0, 2.0)
        # 54 Mb/s MAC tops out well below the PHY rate.
        assert 15.0 < achieved < 32.0

    def test_stop_halts_generation(self):
        sim, ap, client = wireless_hop()
        flow = UdpFlow(sim, ap, target_rate_mbps=10.0)
        flow.start()
        sim.run(until=0.5)
        flow.stop()
        offered = flow.offered
        sim.run(until=1.0)
        assert flow.offered == offered

    def test_interval_throughputs_shape(self):
        sim, ap, client = wireless_hop()
        flow = UdpFlow(sim, ap, target_rate_mbps=8.0)
        flow.start()
        sim.run(until=2.0)
        intervals = flow.interval_throughputs_mbps(0.0, 2.0, window=0.5)
        assert len(intervals) == 4
        assert all(6.0 < x < 10.0 for x in intervals[1:])

    def test_rejects_bad_parameters(self):
        sim, ap, client = wireless_hop()
        with pytest.raises(ConfigurationError):
            UdpFlow(sim, ap, target_rate_mbps=0.0)
        with pytest.raises(ConfigurationError):
            UdpFlow(sim, ap, target_rate_mbps=1.0, payload_bytes=0)

    def test_window_validation(self):
        sim, ap, client = wireless_hop()
        flow = UdpFlow(sim, ap, target_rate_mbps=1.0)
        with pytest.raises(ConfigurationError):
            flow.delivered_mbps(1.0, 1.0)


class TestTcpFlow:
    def test_unbounded_flow_reaches_good_throughput(self):
        sim, ap, client = wireless_hop()
        flow = TcpFlow(sim, sender=ap, receiver=client)
        flow.start()
        sim.run(until=2.0)
        assert flow.throughput_mbps(0.5, 2.0) > 8.0

    def test_finite_transfer_completes(self):
        sim, ap, client = wireless_hop()
        finished = []
        flow = TcpFlow(
            sim,
            sender=ap,
            receiver=client,
            total_bytes=200_000,
            on_finished=lambda f, t: finished.append(t),
        )
        flow.start()
        sim.run(until=5.0)
        assert flow.finished
        assert finished and finished[0] == flow.finish_time
        assert flow.acked_bytes >= 200_000

    def test_slow_start_grows_cwnd(self):
        sim, ap, client = wireless_hop()
        flow = TcpFlow(sim, sender=ap, receiver=client)
        initial = flow.cwnd
        flow.start()
        sim.run(until=0.5)
        assert flow.cwnd > initial

    def test_loss_halves_cwnd(self):
        sim, ap, client = wireless_hop()
        flow = TcpFlow(sim, sender=ap, receiver=client)
        flow.cwnd = 64.0
        flow.ssthresh = 64.0
        flow._on_data_complete(
            _fake_frame(), success=False, time=0.0
        )
        assert flow.cwnd == pytest.approx(32.0)

    def test_acks_contend_on_the_air(self):
        sim, ap, client = wireless_hop()
        flow = TcpFlow(sim, sender=ap, receiver=client)
        flow.start()
        sim.run(until=1.0)
        # The client station transmitted ACK frames.
        assert client.frames_sent > 0

    def test_stop_freezes_flow(self):
        sim, ap, client = wireless_hop()
        flow = TcpFlow(sim, sender=ap, receiver=client)
        flow.start()
        sim.run(until=0.5)
        flow.stop()
        acked = flow.acked_segments
        sim.run(until=1.5)
        # A few in-flight completions may still land, then it stays flat.
        assert flow.acked_segments <= acked + int(flow.params.max_cwnd_segments)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            TcpParameters(mss_bytes=0)
        with pytest.raises(ConfigurationError):
            TcpParameters(ack_every=0)


def _fake_frame():
    from repro.mac80211.frames import FrameJob

    return FrameJob(mac_bytes=1536, rate_mbps=54.0)


class TestIperf:
    def test_udp_campaign_mean(self):
        sim, ap, client = wireless_hop()
        iperf = IperfUdpClient(
            sim, ap, target_rate_mbps=5.0, copies=2, run_seconds=1.0, gap_seconds=0.2
        )
        iperf.start()
        sim.run(until=3.0)
        result = iperf.result()
        assert result.mean_throughput_mbps == pytest.approx(5.0, rel=0.1)
        assert len(result.interval_throughputs_mbps) == 4

    def test_tcp_campaign_produces_intervals(self):
        sim, ap, client = wireless_hop()
        iperf = IperfTcpClient(
            sim, ap, client, copies=2, run_seconds=1.0, gap_seconds=0.2
        )
        iperf.start()
        sim.run(until=3.0)
        result = iperf.result()
        assert result.mean_throughput_mbps > 5.0

    def test_result_before_run_rejected(self):
        sim, ap, client = wireless_hop()
        iperf = IperfUdpClient(sim, ap, target_rate_mbps=5.0)
        with pytest.raises(ConfigurationError):
            iperf.result()

    def test_copies_validation(self):
        sim, ap, client = wireless_hop()
        with pytest.raises(ConfigurationError):
            IperfUdpClient(sim, ap, target_rate_mbps=5.0, copies=0)


class TestPageLoad:
    def _page(self, objects=5, size=30_000):
        return WebPage(
            name="test.site",
            objects=[WebObject(size_bytes=size, server_latency_s=0.02)]
            + [WebObject(size_bytes=size, server_latency_s=0.02) for _ in range(objects)],
        )

    def test_single_load_completes(self):
        sim, ap, client = wireless_hop()
        harness = PageLoadHarness(sim, ap, client)
        harness.run_loads(self._page(), 1)
        sim.run(until=30.0)
        assert len(harness.load_times) == 1
        assert harness.load_times[0] > 0

    def test_sequential_loads_pause_between(self):
        sim, ap, client = wireless_hop()
        harness = PageLoadHarness(sim, ap, client, pause_between_loads_s=1.0)
        harness.run_loads(self._page(objects=2), 2)
        sim.run(until=60.0)
        assert len(harness.load_times) == 2

    def test_single_object_page(self):
        sim, ap, client = wireless_hop()
        harness = PageLoadHarness(sim, ap, client)
        harness.run_loads(WebPage(name="tiny", objects=[WebObject(10_000)]), 1)
        sim.run(until=10.0)
        assert len(harness.load_times) == 1

    def test_overhead_slows_loads(self):
        fast_sim, fast_ap, fast_client = wireless_hop()
        fast = PageLoadHarness(fast_sim, fast_ap, fast_client)
        fast.run_loads(self._page(), 1)
        fast_sim.run(until=30.0)

        slow_sim, slow_ap, slow_client = wireless_hop()
        slow = PageLoadHarness(slow_sim, slow_ap, slow_client, per_load_overhead_s=0.1)
        slow.run_loads(self._page(), 1)
        slow_sim.run(until=30.0)
        assert slow.load_times[0] > fast.load_times[0]

    def test_bigger_page_loads_slower(self):
        sim1, ap1, c1 = wireless_hop()
        small = PageLoadHarness(sim1, ap1, c1)
        small.run_loads(self._page(objects=2, size=10_000), 1)
        sim1.run(until=30.0)

        sim2, ap2, c2 = wireless_hop()
        large = PageLoadHarness(sim2, ap2, c2)
        large.run_loads(self._page(objects=20, size=60_000), 1)
        sim2.run(until=60.0)
        assert large.load_times[0] > small.load_times[0]

    def test_mean_plt_requires_loads(self):
        sim, ap, client = wireless_hop()
        harness = PageLoadHarness(sim, ap, client)
        with pytest.raises(ConfigurationError):
            harness.mean_plt

    def test_page_validation(self):
        with pytest.raises(ConfigurationError):
            WebPage(name="empty", objects=[])
        with pytest.raises(ConfigurationError):
            WebObject(size_bytes=0)

    def test_total_bytes(self):
        page = self._page(objects=3, size=1000)
        assert page.total_bytes == 4000
