"""802.11 rate table and airtime tests."""

import pytest

from repro.errors import ConfigurationError
from repro.mac80211.airtime import (
    ack_airtime_s,
    effective_throughput_mbps,
    frame_airtime_s,
)
from repro.mac80211.rates import (
    ALL_80211G_RATES_MBPS,
    DSSS_RATES_MBPS,
    ERP_OFDM_RATES_MBPS,
    HIGHEST_80211G_RATE_MBPS,
    PHY_80211G,
    basic_rate_for,
    is_dsss_rate,
    is_ofdm_rate,
    validate_rate,
)


class TestRateTable:
    def test_twelve_rates_total(self):
        assert len(ALL_80211G_RATES_MBPS) == 12

    def test_highest_rate_is_54(self):
        assert HIGHEST_80211G_RATE_MBPS == 54.0
        assert max(ALL_80211G_RATES_MBPS) == 54.0

    def test_classification_is_partition(self):
        for rate in ALL_80211G_RATES_MBPS:
            assert is_ofdm_rate(rate) != is_dsss_rate(rate)

    def test_validate_accepts_legal(self):
        assert validate_rate(5.5) == 5.5

    def test_validate_rejects_illegal(self):
        with pytest.raises(ConfigurationError):
            validate_rate(10.0)

    def test_difs_value(self):
        # Short-slot 802.11g: DIFS = 10 + 2*9 = 28 us.
        assert PHY_80211G.difs == pytest.approx(28e-6)

    def test_cw_doubles_per_attempt(self):
        assert PHY_80211G.cw_for_attempt(0) == 15
        assert PHY_80211G.cw_for_attempt(1) == 31
        assert PHY_80211G.cw_for_attempt(3) == 127

    def test_cw_capped_at_max(self):
        assert PHY_80211G.cw_for_attempt(10) == PHY_80211G.cw_max

    def test_cw_rejects_negative_attempt(self):
        with pytest.raises(ConfigurationError):
            PHY_80211G.cw_for_attempt(-1)


class TestBasicRates:
    def test_ofdm_control_response(self):
        assert basic_rate_for(54.0) == 24.0
        assert basic_rate_for(18.0) == 12.0
        assert basic_rate_for(6.0) == 6.0

    def test_dsss_control_response(self):
        assert basic_rate_for(11.0) == 11.0
        assert basic_rate_for(2.0) == 2.0
        assert basic_rate_for(1.0) == 1.0


class TestAirtime:
    def test_power_frame_at_54(self):
        # 1536-byte MPDU at 54 Mb/s: 20 us preamble + 57 symbols + 6 us ext.
        assert frame_airtime_s(1536, 54.0) == pytest.approx(254e-6)

    def test_power_frame_at_1(self):
        # DSSS long preamble (192 us) + 12288 bits at 1 Mb/s.
        assert frame_airtime_s(1536, 1.0) == pytest.approx(12480e-6)

    def test_blindudp_is_49x_powifi(self):
        # The whole §3.2(iii) fairness argument: the 1 Mb/s frame occupies
        # the channel ~49x longer than the 54 Mb/s frame.
        ratio = frame_airtime_s(1536, 1.0) / frame_airtime_s(1536, 54.0)
        assert 45 < ratio < 55

    def test_airtime_monotone_in_size(self):
        assert frame_airtime_s(1536, 54.0) > frame_airtime_s(100, 54.0)

    def test_airtime_monotone_in_rate(self):
        times = [frame_airtime_s(1536, r) for r in ERP_OFDM_RATES_MBPS]
        assert times == sorted(times, reverse=True)

    def test_symbol_quantisation(self):
        # OFDM airtime moves in whole 4 us symbols.
        t1 = frame_airtime_s(100, 54.0)
        t2 = frame_airtime_s(101, 54.0)
        delta = t2 - t1
        assert delta == pytest.approx(0.0) or delta == pytest.approx(4e-6)

    def test_short_dsss_preamble_above_1mbps(self):
        long_pre = frame_airtime_s(100, 1.0) - (800 / 1e6)
        short_pre = frame_airtime_s(100, 2.0) - (800 / 2e6)
        assert long_pre == pytest.approx(192e-6)
        assert short_pre == pytest.approx(96e-6)

    def test_rejects_zero_size(self):
        with pytest.raises(ConfigurationError):
            frame_airtime_s(0, 54.0)

    def test_rejects_bad_rate(self):
        # 13 Mb/s is HT MCS1, so it is legal; 14 Mb/s is nobody's rate.
        with pytest.raises(ConfigurationError):
            frame_airtime_s(1536, 14.0)


class TestAckAirtime:
    def test_ack_is_short(self):
        assert ack_airtime_s(54.0) < 50e-6

    def test_ack_slower_for_dsss(self):
        assert ack_airtime_s(1.0) > ack_airtime_s(54.0)


class TestEffectiveThroughput:
    def test_54mbps_mac_efficiency(self):
        # Unicast 1460-byte payloads at 54 Mb/s top out near 26-30 Mb/s
        # after DIFS/backoff/ACK overhead — the classic 802.11g number.
        throughput = effective_throughput_mbps(1460, 76, 54.0)
        assert 24.0 < throughput < 32.0

    def test_throughput_increases_with_rate(self):
        low = effective_throughput_mbps(1460, 76, 6.0)
        high = effective_throughput_mbps(1460, 76, 54.0)
        assert high > low

    def test_no_ack_is_faster(self):
        with_ack = effective_throughput_mbps(1460, 76, 54.0, with_ack=True)
        without = effective_throughput_mbps(1460, 76, 54.0, with_ack=False)
        assert without > with_ack
