"""Unit tests for the static HTML run observatory (`repro.obs.dash`).

The dashboard's contract: one self-contained file (no scripts, no
network), every charted value also present as text, pure build (equal
inputs → byte-identical output), graceful degradation when sidecar
artifacts are missing.
"""

import json
from html.parser import HTMLParser

import pytest

from repro.obs.dash import DASH_FILENAME, build_dash, sparkline, write_dash


def stub_manifest():
    """A v5-shaped manifest exercising every dashboard section."""
    return {
        "schema": 5,
        "seed": 0,
        "jobs": 2,
        "code_fingerprint": "abcdef0123456789",
        "totals": {
            "experiments": 2,
            "ok": 2,
            "wall_s": 3.25,
            "cache_hits": 1,
            "events_dispatched": 1234,
            "retried_parts": 1,
        },
        "slo": {
            "schema": 1,
            "specs": ["slos/fig7.json"],
            "counts": {"ok": 1, "violated": 1, "skipped": 1},
            "ok": False,
            "objectives": [
                {
                    "experiment": "fig7",
                    "id": "channel.occupancy.cumulative_mean",
                    "metric": "channel.occupancy.cumulative.mean",
                    "kind": "threshold",
                    "op": ">=",
                    "value": 1.0,
                    "status": "ok",
                    "actual": 1.246,
                    "margin": 0.246,
                    "worst_window": None,
                },
                {
                    "experiment": "fig7",
                    "id": "channel.occupancy.worst_window",
                    "kind": "window",
                    "op": ">=",
                    "value": 1.0,
                    "status": "violated",
                    "actual": 0.8,
                    "margin": -0.2,
                    "worst_window": {"start_s": 1.0, "end_s": 3.5, "value": 0.8},
                },
                {
                    "experiment": "fig12",
                    "id": "camera.battery_free.range",
                    "kind": "threshold",
                    "op": ">=",
                    "value": 16.0,
                    "status": "skipped",
                    "actual": None,
                    "margin": None,
                    "worst_window": None,
                    "reason": "experiment not in run",
                },
            ],
        },
        "experiments": [
            {
                "id": "fig7",
                "error": None,
                "domain": {
                    "channel.occupancy.cumulative.mean": 1.246,
                    "channel.occupancy.cumulative.series": {
                        "window_s": 0.5,
                        "samples": [1.1, 1.3, 1.2, 1.4],
                    },
                },
                "parts": [
                    {
                        "part": "all",
                        "attempts": 2,
                        "failure_kind": None,
                        "engine": {
                            "profile": {
                                "router.packet": {
                                    "component": "router",
                                    "count": 900,
                                    "wall_s": 0.9,
                                },
                                "harvester.tick": {
                                    "component": "harvester",
                                    "count": 100,
                                    "wall_s": 0.1,
                                },
                            }
                        },
                    }
                ],
            },
        ],
        "spans": {
            "records": [
                {"name": "run.experiment", "wall_s": 1.5, "attrs": {"experiment": "fig7"}},
                {"name": "merge.results", "wall_s": 0.25, "attrs": {}},
            ]
        },
        "faults": {"events": [{"point": "worker.crash", "task": "fig7:all"}]},
    }


def stub_history():
    return [
        {
            "totals": {"wall_s": 4.0},
            "experiments": {"fig7": {"wall_s": 2.0, "cache_hit": False}},
        },
        {
            "totals": {"wall_s": 3.25},
            "experiments": {"fig7": {"wall_s": 1.5, "cache_hit": False}},
        },
    ]


def stub_metrics():
    return [
        {
            "type": "counter",
            "name": "harvester.energy.in_uj",
            "labels": {"chain": "camera"},
            "value": 1250.0,
        },
        {
            "type": "counter",
            "name": "harvester.energy.operations",
            "labels": {"chain": "camera"},
            "value": 7.0,
        },
        {
            "type": "timeseries",
            "name": "harvester.storage.voltage_v",
            "labels": {"chain": "camera"},
            "samples": [[0.0, 2.1], [1.0, 2.4], [2.0, 2.2]],
        },
    ]


class TagBalanceChecker(HTMLParser):
    """Fails on mismatched close tags and reports unclosed ones."""

    VOID = {
        "area", "base", "br", "col", "embed", "hr", "img", "input",
        "link", "meta", "source", "track", "wbr", "circle", "polyline",
        "path", "rect", "line", "stop", "use",
    }

    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.stack = []
        self.errors = []

    def handle_starttag(self, tag, attrs):
        if tag not in self.VOID:
            self.stack.append(tag)

    def handle_startendtag(self, tag, attrs):
        pass  # <polyline ... /> opens and closes itself

    def handle_endtag(self, tag):
        if not self.stack or self.stack[-1] != tag:
            self.errors.append(f"unexpected </{tag}> (stack: {self.stack[-3:]})")
        else:
            self.stack.pop()


def assert_well_formed(page):
    checker = TagBalanceChecker()
    checker.feed(page)
    assert not checker.errors, checker.errors
    assert not checker.stack, f"unclosed tags: {checker.stack}"


class TestSparkline:
    def test_empty_series_renders_nothing(self):
        assert sparkline([]) == ""

    def test_svg_carries_title_tooltip_and_marks(self):
        svg = sparkline([1.0, 2.0, 1.5], title="demo series")
        assert svg.startswith("<svg")
        assert "<title>demo series</title>" in svg
        assert 'stroke-width="2"' in svg  # 2px line
        assert 'r="4"' in svg  # end dot with surface ring
        assert "<script" not in svg

    def test_flat_series_draws_midline_not_nan(self):
        svg = sparkline([3.0, 3.0, 3.0])
        assert "nan" not in svg.lower()
        assert "18.0" in svg  # midline of the default 36px height


class TestBuildDash:
    def test_all_sections_present(self):
        page = build_dash(stub_manifest(), stub_history(), stub_metrics())
        for heading in (
            "SLO scorecard",
            "Domain metric streams",
            "Perf history trend",
            "Span flame summary",
            "Per-kind attribution",
            "Fault &amp; retry timeline",
            "Energy ledger",
        ):
            assert heading in page, heading
        # SLO hero: 1 ok of 2 evaluated (skips excluded).
        assert "1/2" in page
        assert "PASS" in page and "VIOLATED" in page and "SKIPPED" in page

    def test_charted_values_also_appear_as_text(self):
        page = build_dash(stub_manifest(), stub_history(), stub_metrics())
        assert "1.246" in page  # SLO actual
        assert "1.5000 s" in page  # top span wall
        assert "router.packet" in page and "900" in page  # attribution
        assert "1,250" in page or "1250" in page  # energy in_uj

    def test_self_contained_no_scripts_or_network(self):
        page = build_dash(stub_manifest(), stub_history(), stub_metrics())
        lowered = page.lower()
        assert "<script" not in lowered
        assert "http://" not in lowered and "https://" not in lowered
        assert "@import" not in lowered and "url(" not in lowered
        assert "prefers-color-scheme: dark" in page  # dark palette shipped

    def test_well_formed_html(self):
        assert_well_formed(build_dash(stub_manifest(), stub_history(), stub_metrics()))
        assert_well_formed(build_dash({}))  # empty manifest degrades

    def test_pure_equal_inputs_byte_identical(self):
        args = (stub_manifest(), stub_history(), stub_metrics())
        assert build_dash(*args) == build_dash(*args)

    def test_empty_manifest_degrades_with_placeholders(self):
        page = build_dash({})
        assert "No SLO specs were evaluated" in page
        assert "No perf_history.jsonl found" in page
        assert "Span flame summary" not in page  # empty sections vanish
        assert "Energy ledger" not in page

    def test_interrupted_flag_surfaces(self):
        manifest = stub_manifest()
        manifest["interrupted"] = True
        assert "INTERRUPTED" in build_dash(manifest)


class TestWriteDash:
    def test_writes_page_with_default_sidecar_discovery(self, tmp_path):
        manifest_path = tmp_path / "run_manifest.json"
        manifest_path.write_text(json.dumps(stub_manifest()))
        metrics_path = tmp_path / "run_metrics.jsonl"
        metrics_path.write_text(
            "\n".join(json.dumps(record) for record in stub_metrics()) + "\n"
        )
        out = write_dash(manifest_path, out_path=tmp_path / DASH_FILENAME)
        page = (tmp_path / DASH_FILENAME).read_text()
        assert out == str(tmp_path / DASH_FILENAME)
        assert "Energy ledger" in page  # metrics sidecar found by location
        assert_well_formed(page)

    def test_missing_sidecars_degrade(self, tmp_path):
        manifest_path = tmp_path / "run_manifest.json"
        manifest_path.write_text(json.dumps(stub_manifest()))
        out = tmp_path / "out.html"
        write_dash(
            manifest_path,
            out_path=out,
            history_path=tmp_path / "absent.jsonl",
            metrics_path=tmp_path / "absent2.jsonl",
        )
        page = out.read_text()
        assert "Energy ledger" not in page
        assert "No perf_history.jsonl found" in page

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(OSError):
            write_dash(tmp_path / "absent.json", out_path=tmp_path / "x.html")
