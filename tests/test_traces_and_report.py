"""Trace file format and the one-shot reproduction report."""

import io

import pytest

from repro.errors import ConfigurationError
from repro.workloads.homes import HOME_DEPLOYMENTS, HomeDeployment
from repro.workloads.traces import OccupancyTrace, replay_through_sensor


def small_trace():
    trace = OccupancyTrace(window_s=60.0, channels=[1, 6, 11])
    trace.append_window({1: 0.4, 6: 0.5, 11: 0.45})
    trace.append_window({1: 0.3, 6: 0.6, 11: 0.40})
    return trace


class TestOccupancyTrace:
    def test_window_accounting(self):
        trace = small_trace()
        assert trace.window_count == 2
        assert trace.duration_s == 120.0

    def test_series_and_cumulative(self):
        trace = small_trace()
        assert trace.series(6).samples == [0.5, 0.6]
        cumulative = trace.cumulative()
        assert cumulative.samples[0] == pytest.approx(1.35)

    def test_dump_load_round_trip(self):
        trace = small_trace()
        text = trace.dump()
        loaded = OccupancyTrace.load(io.StringIO(text))
        assert loaded.window_s == trace.window_s
        assert loaded.channels == trace.channels
        assert loaded.samples == trace.samples

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "home.jsonl")
        trace = small_trace()
        trace.dump(path)
        loaded = OccupancyTrace.load(path)
        assert loaded.samples == trace.samples

    def test_from_home_deployment(self):
        deployment = HomeDeployment(HOME_DEPLOYMENTS[1], duration_s=3600.0)
        deployment.run()
        trace = OccupancyTrace.from_home_deployment(deployment)
        assert trace.window_count == 60
        assert trace.channels == [1, 6, 11]
        assert trace.cumulative().mean == pytest.approx(
            deployment.cumulative_occupancy_series().mean
        )

    def test_from_unrun_deployment_rejected(self):
        deployment = HomeDeployment(HOME_DEPLOYMENTS[0])
        with pytest.raises(ConfigurationError):
            OccupancyTrace.from_home_deployment(deployment)

    def test_missing_channel_rejected(self):
        trace = OccupancyTrace(window_s=60.0, channels=[1, 6])
        with pytest.raises(ConfigurationError):
            trace.append_window({1: 0.5})

    def test_unknown_channel_series_rejected(self):
        with pytest.raises(ConfigurationError):
            small_trace().series(7)

    def test_malformed_header_rejected(self):
        with pytest.raises(ConfigurationError):
            OccupancyTrace.load(io.StringIO('{"type": "window"}\n'))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            OccupancyTrace.load(io.StringIO(""))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OccupancyTrace(window_s=0.0, channels=[1])
        with pytest.raises(ConfigurationError):
            OccupancyTrace(window_s=60.0, channels=[])


class TestReplay:
    def test_home_trace_drives_sensor(self):
        """Replay a home's log through the duty-cycle simulator."""
        from repro.harvester.harvester import battery_free_harvester
        from repro.rf.link import LinkBudget, Transmitter
        from repro.sensors.duty_cycle import DutyCycleSimulator
        from repro.sensors.mcu import TEMPERATURE_READ_ENERGY_J

        deployment = HomeDeployment(HOME_DEPLOYMENTS[1], duration_s=600.0)
        deployment.run()
        trace = OccupancyTrace.from_home_deployment(deployment)
        link = LinkBudget(Transmitter(tx_power_dbm=30.0))
        simulator = DutyCycleSimulator(
            battery_free_harvester(),
            link.received_power_dbm_at_feet(10.0),
            TEMPERATURE_READ_ENERGY_J,
            step_s=0.1,
        )
        result = replay_through_sensor(trace, simulator)
        # Home 2 is the quiet one: the sensor runs at a healthy rate.
        assert result.count > 100
        assert 0.3 < result.mean_rate_hz < 10.0


class TestReproductionReport:
    def test_generate_report_passes_everything(self, tmp_path):
        from repro.experiments.report import generate_report

        path = str(tmp_path / "report.md")
        text = generate_report(path)
        assert "PoWiFi reproduction report" in text
        assert "9/9" in text
        with open(path) as handle:
            assert handle.read() == text

    def test_cli_report_command(self, capsys):
        from repro.cli import main

        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "reproduction report" in out
