"""Random-stream and trace-recorder tests."""

import pytest

from repro.sim.rng import RandomStreams
from repro.sim.trace import TraceRecorder


class TestRandomStreams:
    def test_same_seed_same_stream(self):
        a = RandomStreams(42).stream("x")
        b = RandomStreams(42).stream("x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_independent(self):
        streams = RandomStreams(42)
        a = [streams.stream("a").random() for _ in range(5)]
        b = [streams.stream("b").random() for _ in range(5)]
        assert a != b

    def test_different_seeds_differ(self):
        assert RandomStreams(1).stream("x").random() != RandomStreams(2).stream(
            "x"
        ).random()

    def test_stream_is_cached(self):
        streams = RandomStreams(0)
        assert streams.stream("s") is streams.stream("s")

    def test_fork_is_deterministic(self):
        a = RandomStreams(7).fork("child").stream("s").random()
        b = RandomStreams(7).fork("child").stream("s").random()
        assert a == b

    def test_fork_differs_from_parent(self):
        parent = RandomStreams(7)
        child = parent.fork("child")
        assert parent.stream("s").random() != child.stream("s").random()

    def test_adding_stream_does_not_perturb_existing(self):
        one = RandomStreams(3)
        first = one.stream("existing").random()
        two = RandomStreams(3)
        two.stream("new-stream")  # extra stream created first
        second = two.stream("existing").random()
        assert first == second

    def test_seed_property(self):
        assert RandomStreams(99).seed == 99


class TestTraceRecorder:
    def test_emit_and_len(self):
        recorder = TraceRecorder()
        recorder.emit(1.0, "mac", "tx_start", size=1536)
        recorder.emit(2.0, "mac", "tx_end")
        assert len(recorder) == 2

    def test_filter_by_kind(self):
        recorder = TraceRecorder()
        recorder.emit(1.0, "mac", "tx_start")
        recorder.emit(2.0, "mac", "tx_end")
        assert len(recorder.filter(kind="tx_start")) == 1

    def test_filter_by_source(self):
        recorder = TraceRecorder()
        recorder.emit(1.0, "ch1", "tx_start")
        recorder.emit(1.0, "ch6", "tx_start")
        assert len(recorder.filter(source="ch6")) == 1

    def test_filter_by_predicate(self):
        recorder = TraceRecorder()
        recorder.emit(1.0, "mac", "tx", size=100)
        recorder.emit(2.0, "mac", "tx", size=1500)
        big = recorder.filter(predicate=lambda r: r.get("size", 0) > 1000)
        assert len(big) == 1 and big[0].get("size") == 1500

    def test_enabled_kinds_filtering(self):
        recorder = TraceRecorder(enabled_kinds=["tx_start"])
        recorder.emit(1.0, "mac", "tx_start")
        recorder.emit(1.0, "mac", "tx_end")
        assert len(recorder) == 1

    def test_clear(self):
        recorder = TraceRecorder()
        recorder.emit(1.0, "mac", "tx")
        recorder.clear()
        assert len(recorder) == 0

    def test_record_get_default(self):
        recorder = TraceRecorder()
        recorder.emit(1.0, "mac", "tx")
        record = recorder.records[0]
        assert record.get("missing", "fallback") == "fallback"

    def test_iteration_order(self):
        recorder = TraceRecorder()
        for i in range(3):
            recorder.emit(float(i), "s", "k", index=i)
        assert [r.get("index") for r in recorder] == [0, 1, 2]


class TestTraceRecorderIndex:
    def test_filter_by_kind_uses_index_and_preserves_order(self):
        recorder = TraceRecorder()
        for i in range(100):
            recorder.emit(float(i), "s", "even" if i % 2 == 0 else "odd", index=i)
        evens = recorder.filter(kind="even")
        assert [r.get("index") for r in evens] == list(range(0, 100, 2))
        # The indexed path must agree with a linear scan over records.
        scan = [r for r in recorder.records if r.kind == "even"]
        assert evens == scan

    def test_filter_kind_plus_source_composes(self):
        recorder = TraceRecorder()
        recorder.emit(1.0, "ch1", "tx")
        recorder.emit(2.0, "ch6", "tx")
        recorder.emit(3.0, "ch6", "rx")
        both = recorder.filter(kind="tx", source="ch6")
        assert len(both) == 1 and both[0].time == 2.0

    def test_filter_unknown_kind_is_empty(self):
        recorder = TraceRecorder()
        recorder.emit(1.0, "s", "tx")
        assert recorder.filter(kind="nope") == []

    def test_kinds_listing(self):
        recorder = TraceRecorder()
        recorder.emit(1.0, "s", "b_kind")
        recorder.emit(2.0, "s", "a_kind")
        assert sorted(recorder.kinds()) == ["a_kind", "b_kind"]

    def test_clear_drops_index(self):
        recorder = TraceRecorder()
        recorder.emit(1.0, "s", "tx")
        recorder.clear()
        assert recorder.filter(kind="tx") == []
        recorder.emit(2.0, "s", "tx")
        assert len(recorder.filter(kind="tx")) == 1

    def test_wants_respects_enabled_kinds(self):
        record_all = TraceRecorder()
        assert record_all.wants("anything")
        narrow = TraceRecorder(enabled_kinds=["tx"])
        assert narrow.wants("tx")
        assert not narrow.wants("rx")
        nothing = TraceRecorder(enabled_kinds=[])
        assert not nothing.wants("tx")


class TestTraceRecordFields:
    def test_emit_copies_caller_fields_mapping(self):
        recorder = TraceRecorder()
        fields = {"depth": 3}
        recorder.emit(1.0, "s", "gate", fields)
        fields["depth"] = 99  # caller mutates after emit
        fields["extra"] = True
        record = recorder.records[0]
        assert record.get("depth") == 3
        assert record.get("extra") is None

    def test_emit_merges_mapping_and_keywords(self):
        recorder = TraceRecorder()
        recorder.emit(1.0, "s", "k", {"a": 1}, b=2)
        record = recorder.records[0]
        assert record.get("a") == 1 and record.get("b") == 2

    def test_to_dict_and_jsonl_round_trip(self, tmp_path):
        import json

        recorder = TraceRecorder()
        recorder.emit(0.5, "medium:ch1", "mac.tx", airtime_s=0.001)
        as_dict = recorder.records[0].to_dict()
        assert as_dict == {
            "time": 0.5,
            "source": "medium:ch1",
            "kind": "mac.tx",
            "fields": {"airtime_s": 0.001},
        }
        path = tmp_path / "trace.jsonl"
        assert recorder.to_jsonl(str(path)) == 1
        assert json.loads(path.read_text().splitlines()[0]) == as_dict
