"""End-to-end integration tests spanning the full stack."""

import pytest

import repro
from repro.core.config import InjectorConfig, Scheme
from repro.core.occupancy import occupancy_from_pcap
from repro.core.router import PoWiFiRouter, RouterConfig
from repro.core.scheduler import OccupancyCap
from repro.core.multi_router import MultiRouterDeployment
from repro.errors import ConfigurationError
from repro.mac80211.capture import MonitorCapture
from repro.mac80211.medium import Medium
from repro.netstack.iperf import IperfUdpClient
from repro.rf.link import LinkBudget, Transmitter
from repro.sensors.temperature import TemperatureSensor
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workloads.office import OfficeBackground


class TestQuickstart:
    def test_public_api_quickstart(self):
        result = repro.quickstart_powifi(duration_s=1.0, seed=3)
        assert result.cumulative_occupancy > 1.0
        assert result.power_frames_sent > 1000
        assert set(result.occupancy_by_channel) == {1, 6, 11}

    def test_deterministic_across_runs(self):
        a = repro.quickstart_powifi(duration_s=0.5, seed=11)
        b = repro.quickstart_powifi(duration_s=0.5, seed=11)
        assert a.cumulative_occupancy == b.cumulative_occupancy
        assert a.power_frames_sent == b.power_frames_sent

    def test_seed_changes_details(self):
        a = repro.quickstart_powifi(duration_s=0.5, seed=1)
        b = repro.quickstart_powifi(duration_s=0.5, seed=2)
        # Same design, different backoff draws.
        assert a.cumulative_occupancy == pytest.approx(
            b.cumulative_occupancy, rel=0.1
        )


class TestFullMeasurementPipeline:
    def test_router_to_pcap_to_occupancy(self, tmp_path):
        """Router transmits -> monitor writes real pcap -> analyzer parses
        it back and agrees with the live analyzer (the §4 pipeline)."""
        sim = Simulator()
        streams = RandomStreams(0)
        medium = Medium(sim, channel=6)
        router = PoWiFiRouter(
            sim,
            {6: medium},
            streams,
            RouterConfig(scheme=Scheme.POWIFI, channels=(6,), client_channel=6),
        )
        path = str(tmp_path / "ch6.pcap")
        capture = MonitorCapture(medium, target=path, station_filter="router:ch6")
        router.start()
        sim.run(until=0.25)
        capture.close()
        offline = occupancy_from_pcap(path, duration_s=0.25)
        live = router.occupancy_by_channel()[6]
        assert offline == pytest.approx(live, rel=0.02)
        assert capture.captured_frames > 100


class TestCoexistenceStack:
    def test_powifi_plus_office_plus_client(self):
        """All the moving pieces at once, as in every §4.1 run."""
        sim = Simulator()
        streams = RandomStreams(5)
        media = {ch: Medium(sim, channel=ch) for ch in (1, 6, 11)}
        router = PoWiFiRouter(sim, media, streams)
        office = OfficeBackground(sim, media, streams)
        iperf = IperfUdpClient(
            sim, router.client_station, target_rate_mbps=10.0, copies=1,
            run_seconds=1.0, gap_seconds=0.2,
        )
        router.start()
        office.start()
        iperf.start()
        sim.run(until=1.5)
        assert iperf.result().mean_throughput_mbps == pytest.approx(10.0, rel=0.1)
        assert router.cumulative_occupancy() > 0.8


class TestOccupancyCap:
    def test_cap_reduces_cumulative_occupancy(self):
        """The §4/§6 extension: hold cumulative occupancy at a target."""
        def run(with_cap):
            sim = Simulator()
            streams = RandomStreams(0)
            media = {ch: Medium(sim, channel=ch) for ch in (1, 6, 11)}
            router = PoWiFiRouter(sim, media, streams)
            router.start()
            if with_cap:
                cap = OccupancyCap(sim, router, target=0.95, sample_interval_s=0.25)
                cap.start()
            sim.run(until=6.0)
            return router.cumulative_occupancy(start=3.0)

        uncapped = run(False)
        capped = run(True)
        assert uncapped > 1.5
        assert capped < uncapped
        assert capped == pytest.approx(0.95, abs=0.25)

    def test_cap_requires_injectors(self):
        sim = Simulator()
        media = {1: Medium(sim, channel=1)}
        router = PoWiFiRouter(
            sim, media, RandomStreams(0),
            RouterConfig(scheme=Scheme.BASELINE, channels=(1,), client_channel=1),
        )
        with pytest.raises(ConfigurationError):
            OccupancyCap(sim, router)

    def test_cap_history_recorded(self):
        sim = Simulator()
        media = {ch: Medium(sim, channel=ch) for ch in (1, 6, 11)}
        router = PoWiFiRouter(sim, media, RandomStreams(0))
        cap = OccupancyCap(sim, router, sample_interval_s=0.2)
        router.start()
        cap.start()
        sim.run(until=1.0)
        assert len(cap.history) >= 4


class TestMultiRouter:
    def test_two_routers_share_and_aggregate(self):
        sim = Simulator()
        deployment = MultiRouterDeployment(sim, RandomStreams(0), router_count=2)
        result = deployment.run(0.5)
        # Each router individually scales back (carrier sense)...
        for occupancy in result.per_router_cumulative.values():
            assert occupancy < 1.8
        # ...but the harvester-visible aggregate stays high.
        assert result.aggregate_cumulative > 1.5

    def test_invalid_count(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            MultiRouterDeployment(sim, RandomStreams(0), router_count=0)


class TestSensorOnSimulatedRouter:
    def test_measured_occupancy_drives_sensor(self):
        """Couple the DCF-simulated occupancy into the harvester chain:
        the sensor's update rate at 10 ft follows the router's measured
        cumulative occupancy, like Fig 15 does with the home logs."""
        result = repro.quickstart_powifi(duration_s=1.0, seed=0)
        link = LinkBudget(Transmitter(tx_power_dbm=30.0))
        sensor = TemperatureSensor()
        rx = link.received_power_dbm_at_feet(10.0)
        rate = sensor.update_rate_hz(rx, occupancy=result.cumulative_occupancy)
        assert 0.5 < rate < 20.0
