"""Device-queue tests: FIFO, per-class round robin, bounds."""

import pytest

from repro.errors import ConfigurationError
from repro.mac80211.frames import FrameJob, FrameKind
from repro.netstack.txqueue import DeviceQueue, power_vs_client, single_class


def power_frame():
    return FrameJob(mac_bytes=1536, rate_mbps=54.0, kind=FrameKind.POWER, broadcast=True)


def client_frame():
    return FrameJob(mac_bytes=1506, rate_mbps=54.0, kind=FrameKind.DATA)


class TestFifoBehaviour:
    def test_fifo_order(self):
        queue = DeviceQueue()
        frames = [client_frame() for _ in range(3)]
        for frame in frames:
            queue.push(frame)
        assert [queue.pop() for _ in range(3)] == frames

    def test_peek_matches_pop(self):
        queue = DeviceQueue()
        a, b = client_frame(), client_frame()
        queue.push(a)
        queue.push(b)
        assert queue.peek() is a
        assert queue.pop() is a

    def test_empty_pop_returns_none(self):
        queue = DeviceQueue()
        assert queue.pop() is None
        assert queue.peek() is None

    def test_depth_tracks_size(self):
        queue = DeviceQueue()
        queue.push(client_frame())
        queue.push(client_frame())
        assert queue.depth == len(queue) == 2
        queue.pop()
        assert queue.depth == 1

    def test_capacity_tail_drop(self):
        queue = DeviceQueue(capacity=2)
        assert queue.push(client_frame())
        assert queue.push(client_frame())
        assert not queue.push(client_frame())
        assert queue.total_tail_dropped == 1

    def test_push_front_bypasses_capacity(self):
        queue = DeviceQueue(capacity=1)
        first = client_frame()
        queue.push(first)
        popped = queue.pop()
        queue.push(client_frame())
        queue.push_front(popped)  # retry path must always succeed
        assert queue.pop() is popped

    def test_clear(self):
        queue = DeviceQueue()
        queue.push(client_frame())
        queue.clear()
        assert len(queue) == 0

    def test_high_watermark(self):
        queue = DeviceQueue()
        for _ in range(5):
            queue.push(client_frame())
        for _ in range(5):
            queue.pop()
        assert queue.high_watermark == 5

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            DeviceQueue(capacity=0)


class TestClassedBehaviour:
    def test_classifier_separates_power_and_client(self):
        assert power_vs_client(power_frame()) == "power"
        assert power_vs_client(client_frame()) == "client"

    def test_round_robin_alternates_backlogged_classes(self):
        queue = DeviceQueue(classifier=power_vs_client)
        for _ in range(4):
            queue.push(power_frame())
        for _ in range(4):
            queue.push(client_frame())
        kinds = [queue.pop().kind for _ in range(8)]
        power_positions = [i for i, k in enumerate(kinds) if k is FrameKind.POWER]
        client_positions = [i for i, k in enumerate(kinds) if k is FrameKind.DATA]
        # Strict alternation: positions interleave.
        assert all(abs(p - c) == 1 for p, c in zip(power_positions, client_positions))

    def test_single_backlogged_class_served_exclusively(self):
        queue = DeviceQueue(classifier=power_vs_client)
        for _ in range(3):
            queue.push(power_frame())
        kinds = {queue.pop().kind for _ in range(3)}
        assert kinds == {FrameKind.POWER}

    def test_per_class_capacity(self):
        queue = DeviceQueue(capacity=2, classifier=power_vs_client)
        assert queue.push(power_frame())
        assert queue.push(power_frame())
        assert not queue.push(power_frame())  # power class full
        assert queue.push(client_frame())  # client class unaffected

    def test_depth_of_class(self):
        queue = DeviceQueue(classifier=power_vs_client)
        queue.push(power_frame())
        queue.push(power_frame())
        queue.push(client_frame())
        assert queue.depth_of("power") == 2
        assert queue.depth_of("client") == 1
        assert queue.depth_of("missing") == 0

    def test_total_depth_spans_classes(self):
        queue = DeviceQueue(classifier=power_vs_client)
        queue.push(power_frame())
        queue.push(client_frame())
        assert queue.depth == 2

    def test_iteration_covers_all_classes(self):
        queue = DeviceQueue(classifier=power_vs_client)
        queue.push(power_frame())
        queue.push(client_frame())
        assert len(list(queue)) == 2

    def test_class_names(self):
        queue = DeviceQueue(classifier=power_vs_client)
        queue.push(power_frame())
        queue.push(client_frame())
        assert set(queue.class_names) == {"power", "client"}

    def test_default_classifier_single_class(self):
        assert single_class(power_frame()) == single_class(client_frame())
