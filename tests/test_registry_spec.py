"""Registry specs: target validation, metadata consistency, seed routing."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.registry import (
    EXPERIMENTS,
    RUNTIME_CLASSES,
    SPECS,
    get_experiment,
    get_spec,
    resolve_target,
)


class TestTargetValidation:
    @pytest.mark.parametrize(
        "target",
        [
            "no_colon_at_all",
            "two:colons:here",
            ":leading_colon",
            "trailing_colon:",
            "repro..experiments:run",
            "repro.experiments:not an identifier",
            "repro.experiments:class",  # keyword
            "1module:func",
        ],
    )
    def test_malformed_targets_raise_configuration_error(self, target):
        with pytest.raises(ConfigurationError, match="malformed target"):
            resolve_target(target)

    def test_unimportable_module_raises_configuration_error(self):
        with pytest.raises(ConfigurationError, match="cannot import"):
            resolve_target("repro.experiments.no_such_module:run")

    def test_missing_attribute_raises_configuration_error(self):
        with pytest.raises(ConfigurationError, match="no attribute"):
            resolve_target("repro.experiments.registry:no_such_function")

    def test_valid_target_resolves(self):
        func = resolve_target("repro.experiments.table1_homes:run_table1")
        assert callable(func)

    def test_unknown_experiment_id(self):
        with pytest.raises(ConfigurationError, match="unknown experiment"):
            get_experiment("fig99")


class TestSpecConsistency:
    def test_specs_and_experiments_views_agree(self):
        assert set(SPECS) == set(EXPERIMENTS)
        for key, spec in SPECS.items():
            assert spec.id == key
            assert EXPERIMENTS[key] == spec.target

    def test_seventeen_experiments_registered(self):
        assert len(SPECS) == 17

    def test_runtime_classes_are_valid(self):
        for spec in SPECS.values():
            assert spec.runtime in RUNTIME_CLASSES, spec.id

    def test_every_driver_resolves(self):
        for spec in SPECS.values():
            assert callable(spec.resolve()), spec.id

    def test_every_shape_check_resolves(self):
        for spec in SPECS.values():
            assert spec.check is not None, spec.id
            assert callable(resolve_target(spec.check)), spec.id

    def test_every_sweep_factory_builds_a_plan(self):
        decomposed = set()
        for spec in SPECS.values():
            if spec.sweep is None:
                continue
            plan = resolve_target(spec.sweep)(seed=0)
            assert len(plan.parts) >= 2, spec.id
            assert callable(plan.merge), spec.id
            names = [part.name for part in plan.parts]
            assert len(names) == len(set(names)), f"{spec.id}: duplicate part names"
            decomposed.add(spec.id)
        assert {"fig5", "fig6a", "fig6b", "fig6c", "fig8", "fig14", "sec8c"} <= decomposed


class TestSeedRouting:
    def test_seeded_and_seedless_drivers_detected(self):
        assert get_spec("fig14").accepts_seed()
        assert get_spec("fig5").accepts_seed()
        assert not get_spec("fig13").accepts_seed()
        assert not get_spec("table1").accepts_seed()
