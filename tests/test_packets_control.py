"""Control-frame codec tests (ACK/RTS/CTS) and beacon-capture fidelity."""

import pytest

from repro.errors import ChecksumError, CodecError, TruncatedFrameError
from repro.mac80211.beacon import BEACON_FRAME_BYTES, BeaconSource
from repro.mac80211.capture import MonitorCapture
from repro.mac80211.medium import Medium
from repro.mac80211.station import Station
from repro.packets.control import AckFrame, CtsFrame, RtsFrame
from repro.packets.dot11 import Dot11Beacon, MacAddress
from repro.packets.pcap import PcapReader
from repro.packets.radiotap import RadiotapHeader
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams

RA = MacAddress.from_string("02:00:00:00:00:aa")
TA = MacAddress.from_string("02:00:00:00:00:bb")


class TestAck:
    def test_round_trip(self):
        frame = AckFrame(receiver=RA, duration_us=44)
        decoded = AckFrame.decode(frame.encode())
        assert decoded == frame

    def test_length_is_14(self):
        assert len(AckFrame(receiver=RA).encode()) == AckFrame.LENGTH == 14

    def test_fcs_corruption(self):
        raw = bytearray(AckFrame(receiver=RA).encode())
        raw[4] ^= 0x01
        with pytest.raises(ChecksumError):
            AckFrame.decode(bytes(raw))

    def test_truncated(self):
        with pytest.raises(TruncatedFrameError):
            AckFrame.decode(b"\x00" * 5)

    def test_wrong_subtype_rejected(self):
        cts = CtsFrame(receiver=RA).encode()
        with pytest.raises(CodecError):
            AckFrame.decode(cts)


class TestRtsCts:
    def test_rts_round_trip(self):
        frame = RtsFrame(receiver=RA, transmitter=TA, duration_us=300)
        decoded = RtsFrame.decode(frame.encode())
        assert decoded == frame

    def test_rts_length_is_20(self):
        assert len(RtsFrame(receiver=RA, transmitter=TA).encode()) == 20

    def test_cts_round_trip(self):
        frame = CtsFrame(receiver=RA, duration_us=250)
        assert CtsFrame.decode(frame.encode()) == frame

    def test_cts_rejects_ack_bytes(self):
        with pytest.raises(CodecError):
            CtsFrame.decode(AckFrame(receiver=RA).encode())

    def test_rts_fcs_corruption(self):
        raw = bytearray(RtsFrame(receiver=RA, transmitter=TA).encode())
        raw[8] ^= 0xFF
        with pytest.raises(ChecksumError):
            RtsFrame.decode(bytes(raw))


class TestBeaconCapture:
    def test_captured_beacons_are_real_beacons(self):
        """Beacon descriptors must materialise as decodable beacon frames
        of exactly the descriptor's on-air size."""
        sim = Simulator()
        streams = RandomStreams(0)
        medium = Medium(sim, channel=1)
        station = Station(sim, name="ap", streams=streams)
        medium.attach(station)
        capture = MonitorCapture(medium)
        source = BeaconSource(sim, station)
        source.start()
        sim.run(until=0.3)
        capture.close()
        records = PcapReader(capture.getvalue()).read_all()
        assert records
        for record in records:
            _header, frame_bytes = RadiotapHeader.decode(record.data)
            assert len(frame_bytes) == BEACON_FRAME_BYTES
            beacon = Dot11Beacon.decode(frame_bytes)
            assert beacon.ssid == "powifi"
