"""Calibration-sensitivity sweeps and the MAC-driven Fig 1 variant."""

import pytest

from repro.experiments.fig01_leakage import run_fig01_mac_driven
from repro.experiments.sensitivity import (
    sweep_office_load,
    sweep_path_loss_exponent,
)
from repro.harvester.waveform import Burst, bursts_from_records
from repro.mac80211.frames import FrameJob
from repro.mac80211.medium import Medium
from repro.mac80211.station import Station
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


class TestMacDrivenFig01:
    def test_mac_driven_stays_below_threshold(self):
        """The full-stack Fig 1: DCF-produced bursts, analog waveform."""
        result = run_fig01_mac_driven(duration_s=0.05)
        assert not result.crossed_threshold
        assert result.peak_voltage_v > 0.03  # it does charge visibly

    def test_mac_driven_occupancy_in_band(self):
        result = run_fig01_mac_driven(duration_s=0.1, occupancy=0.25)
        assert 0.1 < result.occupancy < 0.4

    def test_bursts_from_records_preserve_timing(self):
        sim = Simulator()
        streams = RandomStreams(0)
        medium = Medium(sim, channel=1)
        station = Station(sim, name="a", streams=streams)
        medium.attach(station)
        records = []
        medium.add_observer(records.append)
        for _ in range(3):
            station.enqueue(FrameJob(mac_bytes=1536, rate_mbps=54.0, broadcast=True))
        sim.run()
        bursts = bursts_from_records(records)
        assert len(bursts) == 3
        for record, burst in zip(records, bursts):
            assert burst.start_s == record.start
            assert burst.duration_s == record.duration


class TestPathLossSensitivity:
    @pytest.fixture(scope="class")
    def sweep(self):
        return sweep_path_loss_exponent()

    def test_ordering_stable_across_exponents(self, sweep):
        """camera-free < temp-free < temp-recharging at every exponent."""
        for temp_free, temp_recharging, camera_free in sweep.ranges.values():
            assert camera_free < temp_free < temp_recharging

    def test_calibrated_exponent_reproduces_paper(self, sweep):
        temp_free, temp_recharging, camera_free = sweep.ranges[1.85]
        assert temp_free == pytest.approx(20.0, abs=2.5)
        assert temp_recharging == pytest.approx(28.0, abs=2.5)
        assert camera_free == pytest.approx(17.0, abs=2.0)

    def test_steeper_exponent_shrinks_range(self, sweep):
        assert sweep.ranges[2.0][0] < sweep.ranges[1.7][0]

    def test_spread_is_bounded(self, sweep):
        # A +-0.15 exponent uncertainty moves the range by feet, not tens.
        assert sweep.spread_feet() < 12.0


class TestOfficeLoadSensitivity:
    @pytest.fixture(scope="class")
    def sweep(self):
        return sweep_office_load(loads=(0.1, 0.4), duration_s=1.5)

    def test_do_no_harm_at_every_load(self, sweep):
        """PoWiFi must track Baseline regardless of ambient load."""
        assert sweep.max_powifi_penalty() < 0.15

    def test_baseline_throughput_declines_with_load(self, sweep):
        loads = sorted(sweep.throughput)
        assert sweep.throughput[loads[0]][0] >= sweep.throughput[loads[-1]][0] - 1.0
