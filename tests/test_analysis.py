"""Tests for the shared statistics/reporting helpers."""

import io

import pytest

from repro.analysis import (
    SampleSummary,
    TextTable,
    empirical_cdf,
    mean,
    percentile,
    series_to_csv,
    summarize,
)
from repro.errors import ConfigurationError


class TestCdf:
    def test_sorted_and_normalised(self):
        cdf = empirical_cdf([0.5, 0.1, 0.9])
        assert [v for v, _ in cdf] == [0.1, 0.5, 0.9]
        assert cdf[-1][1] == pytest.approx(1.0)

    def test_empty(self):
        assert empirical_cdf([]) == []

    def test_duplicates_keep_count(self):
        cdf = empirical_cdf([1.0, 1.0])
        assert cdf == [(1.0, 0.5), (1.0, 1.0)]


class TestPercentile:
    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)

    def test_endpoints(self):
        samples = [3.0, 1.0, 2.0]
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 100) == 3.0

    def test_single_sample(self):
        assert percentile([7.0], 50) == 7.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            percentile([], 50)
        with pytest.raises(ConfigurationError):
            percentile([1.0], 101)


class TestSummaries:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_mean_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            mean([])

    def test_summarize(self):
        summary = summarize(list(range(101)))
        assert summary.count == 101
        assert summary.median == pytest.approx(50.0)
        assert summary.p10 == pytest.approx(10.0)
        assert summary.p90 == pytest.approx(90.0)
        assert summary.minimum == 0 and summary.maximum == 100

    def test_summarize_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize([])


class TestTextTable:
    def test_alignment(self):
        table = TextTable(["scheme", "Mb/s"])
        table.add_row(["baseline", 17.123])
        table.add_row(["blind_udp", 0.4])
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0].startswith("scheme")
        assert "17.1" in lines[1]
        assert "0.4" in lines[2]

    def test_row_width_validation(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ConfigurationError):
            table.add_row([1])

    def test_empty_headers_rejected(self):
        with pytest.raises(ConfigurationError):
            TextTable([])

    def test_mixed_types(self):
        table = TextTable(["k", "v"])
        table.add_row(["count", 3])
        assert "3" in table.render()


class TestCsv:
    def test_string_output(self):
        text = series_to_csv({"t": [0.0, 60.0], "occ": [0.9, 1.1]})
        lines = text.strip().splitlines()
        assert lines[0] == "t,occ"
        assert lines[1] == "0,0.9"

    def test_stream_output(self):
        stream = io.StringIO()
        series_to_csv({"x": [1.0]}, stream)
        assert stream.getvalue().startswith("x")

    def test_file_output(self, tmp_path):
        path = str(tmp_path / "log.csv")
        series_to_csv({"x": [1.0, 2.0]}, path)
        with open(path) as handle:
            assert handle.readline().strip() == "x"

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            series_to_csv({"a": [1.0], "b": [1.0, 2.0]})

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            series_to_csv({})

    def test_home_log_round_trip(self):
        """Export a real home deployment log and parse it back."""
        import csv as csv_module

        from repro.workloads.homes import HOME_DEPLOYMENTS, HomeDeployment

        deployment = HomeDeployment(HOME_DEPLOYMENTS[1], duration_s=3600.0)
        deployment.run()
        series = deployment.occupancy_series()
        text = series_to_csv(
            {f"ch{ch}": s.samples for ch, s in series.items()}
        )
        rows = list(csv_module.reader(io.StringIO(text)))
        assert rows[0] == ["ch1", "ch6", "ch11"]
        assert len(rows) == 61  # header + 60 windows
