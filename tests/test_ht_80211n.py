"""802.11n (HT) support tests — the §4.1(d) fairness-on-11n claim."""

import pytest

from repro.core.config import InjectorConfig, Scheme
from repro.errors import ConfigurationError
from repro.experiments.fig08_fairness import measure_neighbor_throughput
from repro.mac80211.airtime import frame_airtime_s
from repro.mac80211.ht import (
    HT_MCS_TABLE,
    ht_frame_airtime_s,
    ht_power_packet_advantage,
)
from repro.mac80211.rates import HT_RATES_MBPS, basic_rate_for, is_ht_rate, validate_rate


class TestHtRates:
    def test_mcs7_rates(self):
        assert HT_MCS_TABLE[7].rate_mbps() == pytest.approx(65.0)
        assert HT_MCS_TABLE[7].rate_mbps(short_gi=True) == pytest.approx(72.2, abs=0.1)

    def test_mcs0_rate(self):
        assert HT_MCS_TABLE[0].rate_mbps() == pytest.approx(6.5)

    def test_validate_accepts_ht(self):
        assert validate_rate(72.2) == 72.2
        assert is_ht_rate(65.0)
        assert not is_ht_rate(54.0)

    def test_basic_rate_for_ht(self):
        assert basic_rate_for(72.2) == 24.0

    def test_unknown_mcs_rejected(self):
        with pytest.raises(ConfigurationError):
            ht_frame_airtime_s(1536, 9)

    def test_bad_size_rejected(self):
        with pytest.raises(ConfigurationError):
            ht_frame_airtime_s(0, 7)


class TestHtAirtime:
    def test_mcs7_long_gi_value(self):
        # 12310 bits / 260 per symbol = 48 symbols; 36 + 192 + 6 us.
        assert ht_frame_airtime_s(1536, 7) == pytest.approx(234e-6)

    def test_short_gi_faster(self):
        assert ht_frame_airtime_s(1536, 7, short_gi=True) < ht_frame_airtime_s(1536, 7)

    def test_airtime_dispatch_via_rate(self):
        assert frame_airtime_s(1536, 65.0) == pytest.approx(
            ht_frame_airtime_s(1536, 7)
        )
        assert frame_airtime_s(1536, 72.2) == pytest.approx(
            ht_frame_airtime_s(1536, 7, short_gi=True)
        )

    def test_airtime_monotone_in_mcs(self):
        times = [ht_frame_airtime_s(1536, mcs) for mcs in range(8)]
        assert times == sorted(times, reverse=True)

    def test_ht_power_frame_briefer_than_erp(self):
        """The §4.1(d) argument: MCS7 frames are briefer than 54 Mb/s ones."""
        assert ht_power_packet_advantage() > 1.0


class TestFairnessOn11n:
    def test_ht_power_packets_at_least_as_fair(self):
        """§4.1(d): 'the above fairness property would hold true even with
        802.11n' — an MCS7-SGI PoWiFi router leaves the neighbour at least
        the throughput the 54 Mb/s build does."""
        neighbor_rate = 24.0
        g_build = measure_neighbor_throughput(
            Scheme.POWIFI, neighbor_rate, duration_s=1.5
        )
        # Same scheme, but power packets at the highest 802.11n rate.
        from repro.experiments.base import build_testbed
        from repro.mac80211.station import Station
        from repro.netstack.udp import UdpFlow

        bed = build_testbed(
            Scheme.POWIFI,
            channels=(1,),
            office_occupancy=None,
            injector_override=InjectorConfig(rate_mbps=72.2, queue_threshold=5),
        )
        neighbor_ap = Station(bed.sim, name="neighbor-ap", streams=bed.streams)
        bed.media[1].attach(neighbor_ap)
        flow = UdpFlow(
            bed.sim,
            neighbor_ap,
            target_rate_mbps=41.0,
            rate_mbps=neighbor_rate,
            flow_label="neighbor",
        )
        bed.start()
        flow.start()
        bed.sim.run(until=1.5)
        n_build = flow.delivered_mbps(0.0, 1.5)
        assert n_build >= 0.95 * g_build

    def test_ht_injector_occupancy_credit_lower(self):
        """Same airtime spent, less size/rate credit: the 11n build's raw
        occupancy metric is lower even though energy delivery (airtime) is
        equivalent — worth knowing when comparing measurements."""
        from repro.experiments.fig05_delay_sweep import measure_occupancy
        from repro.experiments.base import build_testbed

        bed_g = build_testbed(
            Scheme.POWIFI, channels=(1,), office_occupancy=None,
            injector_override=InjectorConfig(rate_mbps=54.0),
        )
        bed_g.start()
        bed_g.sim.run(until=1.0)
        bed_n = build_testbed(
            Scheme.POWIFI, channels=(1,), office_occupancy=None,
            injector_override=InjectorConfig(rate_mbps=72.2),
        )
        bed_n.start()
        bed_n.sim.run(until=1.0)
        g_busy = bed_g.media[1].occupancy()
        n_busy = bed_n.media[1].occupancy()
        # Physical busy time comparable; both near saturation.
        assert n_busy == pytest.approx(g_busy, abs=0.1)
