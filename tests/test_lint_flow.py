"""Tests for ``repro.lint.flow``: the project indexer, each PW1xx rule
(true positive + near-miss false positive), the incremental cache, the
``--flow`` CLI surface, SARIF output, and determinism of the whole pass.

The PW101 and PW103 regression fixtures are derived from real repo
shapes: the MinstrelLite controller's ``rng or RandomStreams(0).stream``
default (two components falling back to the same root lineage) and the
runner's ``TaskSpec.kwargs`` dict crossing ``pool.submit`` (PR 5's
``worker.unpicklable`` fault scenario).
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import LintConfig
from repro.lint.cli import main as lint_main
from repro.lint.findings import Severity
from repro.lint.flow import (
    ModuleFacts,
    ProjectIndex,
    all_flow_rules,
    extract_facts,
    flow_lint_paths,
    flow_lint_sources,
    get_flow_rule,
)
from repro.lint.flow.cache import FlowCache, config_digest, content_hash
from repro.lint.sarif import render_sarif

REPO_ROOT = Path(__file__).resolve().parent.parent


def facts_for(source, module="repro.sim.snippet", config=None):
    path = module.replace(".", "/") + ".py"
    return extract_facts(
        textwrap.dedent(source), path, module, config or LintConfig()
    )


def flow_codes(findings):
    return [f.code for f in findings]


def run_flow(modules, config=None):
    return flow_lint_sources(
        {name: textwrap.dedent(src) for name, src in modules.items()},
        config=config,
    )


class TestFlowRegistry:
    def test_all_five_rules_registered(self):
        assert [r.code for r in all_flow_rules()] == [
            "PW101", "PW102", "PW103", "PW104", "PW105",
        ]

    def test_get_flow_rule_and_unknown(self):
        assert get_flow_rule("pw101").code == "PW101"
        with pytest.raises(KeyError):
            get_flow_rule("PW199")

    def test_rules_have_docs_and_names(self):
        for rule in all_flow_rules():
            assert rule.name and rule.description and rule.__doc__

    def test_registries_do_not_overlap(self):
        from repro.lint import all_rules

        per_file = {r.code for r in all_rules()}
        flow = {r.code for r in all_flow_rules()}
        assert not per_file & flow


class TestIndexer:
    def test_defs_classes_and_method_params(self):
        facts = facts_for(
            """
            def top(a_dbm, b):
                def inner(x):
                    return x
                return inner(a_dbm)

            class Widget:
                def __init__(self, gain_dbi):
                    self.gain_dbi = gain_dbi

                def poke(self, n):
                    return n
            """
        )
        assert facts.defs["top"]["params"] == ["a_dbm", "b"]
        assert facts.defs["top.inner"]["params"] == ["x"]
        # self is stripped from method signatures.
        assert facts.defs["Widget.__init__"]["params"] == ["gain_dbi"]
        assert facts.classes["Widget"]["methods"] == ["__init__", "poke"]

    def test_import_resolved_calls_and_target_literals(self):
        facts = facts_for(
            """
            from repro.rf.link import path_loss
            import repro.sim.engine as eng

            TARGET = "repro.experiments.fig01:run"
            NOT_TARGET = "just a sentence: with colon"

            def go(d_m):
                path_loss(d_m)
                eng.Simulator()
            """
        )
        callees = {c["callee"] for c in facts.calls}
        assert "repro.rf.link.path_loss" in callees
        assert "repro.sim.engine.Simulator" in callees
        assert facts.target_literals == ["repro.experiments.fig01:run"]

    def test_project_index_resolution_and_edges(self):
        index = ProjectIndex(
            [
                facts_for(
                    """
                    from repro.sim.model import step

                    def run(seed):
                        return step(seed)
                    """,
                    module="repro.experiments.fig01",
                ),
                facts_for(
                    """
                    def step(seed):
                        return seed

                    class Engine:
                        def tick(self):
                            return self._advance()

                        def _advance(self):
                            return 1
                    """,
                    module="repro.sim.model",
                ),
            ]
        )
        assert (
            index.resolve_dotted("repro.experiments.fig01", "repro.sim.model.step")
            == "repro.sim.model:step"
        )
        assert index.resolve_target("repro.experiments.fig01:run")
        assert index.resolve_target("repro.experiments.fig01:missing") is None
        edges = index.edges()
        assert "repro.sim.model:step" in edges["repro.experiments.fig01:run"]
        # self.method calls resolve within the class.
        assert edges["repro.sim.model:Engine.tick"] == [
            "repro.sim.model:Engine._advance"
        ]

    def test_callback_references_create_edges(self):
        index = ProjectIndex(
            [
                facts_for(
                    """
                    class Pump:
                        def start(self, sim):
                            sim.schedule(0.0, self._tick)

                        def _tick(self):
                            return 1
                    """,
                    module="repro.sim.pump",
                )
            ]
        )
        edges = index.edges()
        assert "repro.sim.pump:Pump._tick" in edges["repro.sim.pump:Pump.start"]

    def test_facts_round_trip_through_dict(self):
        facts = facts_for(
            """
            def run(seed):  # lint: ignore[PW102] fixture
                return seed
            """
        )
        clone = ModuleFacts.from_dict(
            json.loads(json.dumps(facts.to_dict()))
        )
        assert clone.to_dict() == facts.to_dict()
        assert clone.pragmas == facts.pragmas


class TestPW101StreamCollision:
    def test_true_positive_two_owners_same_name(self):
        findings = run_flow(
            {
                "repro.sim.alpha": """
                class Alpha:
                    def __init__(self, streams):
                        self.rng = streams.stream("noise")
                """,
                "repro.sim.beta": """
                class Beta:
                    def __init__(self, streams):
                        self.rng = streams.stream("noise")
                """,
            }
        )
        assert flow_codes(findings) == ["PW101", "PW101"]
        assert "correlated draws" in findings[0].message

    def test_regression_fixture_minstrel_default_rng_shape(self):
        # Derived from the real MinstrelLite default: a component falling
        # back to ``RandomStreams(0).stream(name)`` inside its own ctor.
        # Two such components share the root lineage and the name.
        findings = run_flow(
            {
                "repro.mac80211.rate_a": """
                from repro.sim.rng import RandomStreams

                class RateController:
                    def __init__(self, rng=None):
                        self._rng = rng or RandomStreams(0).stream("mac.minstrel.probe")
                """,
                "repro.mac80211.rate_b": """
                from repro.sim.rng import RandomStreams

                class ProbeScheduler:
                    def __init__(self, rng=None):
                        self._rng = rng or RandomStreams(0).stream("mac.minstrel.probe")
                """,
            }
        )
        assert flow_codes(findings) == ["PW101", "PW101"]

    def test_near_miss_fork_derived_receivers(self):
        findings = run_flow(
            {
                "repro.sim.alpha": """
                class Alpha:
                    def __init__(self, root, index):
                        self.streams = root.fork(f"home{index}")
                        self.rng = self.streams.stream("noise")
                """,
                "repro.sim.beta": """
                class Beta:
                    def __init__(self, root):
                        self.rng = root.fork("beta").stream("noise")
                """,
            }
        )
        assert findings == []

    def test_near_miss_same_owner_two_sites(self):
        findings = run_flow(
            {
                "repro.sim.alpha": """
                class Alpha:
                    def __init__(self, streams):
                        self.rng = streams.stream("noise")

                    def reset(self, streams):
                        self.rng = streams.stream("noise")
                """,
            }
        )
        assert findings == []

    def test_stream_and_fork_namespaces_are_distinct(self):
        # RandomStreams.fork prefixes labels with "fork:", so .stream("x")
        # and .fork("x") cannot collide.
        findings = run_flow(
            {
                "repro.sim.alpha": """
                class Alpha:
                    def __init__(self, streams):
                        self.rng = streams.stream("x")
                """,
                "repro.sim.beta": """
                class Beta:
                    def __init__(self, streams):
                        self.child = streams.fork("x")
                """,
            }
        )
        assert findings == []


class TestPW102Reachability:
    FIXTURE = {
        "repro.registry": """
        SPECS = {"fig1": "repro.experiments.fig01:run"}
        """,
        "repro.experiments.fig01": """
        from repro.sim.model import step

        def run(seed):
            return step(seed)
        """,
    }

    def test_true_positive_transitive_sink(self):
        findings = run_flow(
            {
                **self.FIXTURE,
                "repro.sim.model": """
                import random

                def step(seed):
                    return random.random()
                """,
            }
        )
        assert flow_codes(findings) == ["PW102"]
        assert "repro.experiments.fig01:run -> repro.sim.model:step" in (
            findings[0].message
        )

    def test_true_positive_through_class_construction(self):
        findings = run_flow(
            {
                **self.FIXTURE,
                "repro.sim.model": """
                import os

                class Noise:
                    def draw(self):
                        return os.urandom(4)

                def step(seed):
                    return Noise()
                """,
            }
        )
        assert flow_codes(findings) == ["PW102"]

    def test_near_miss_unreachable_sink(self):
        findings = run_flow(
            {
                **self.FIXTURE,
                "repro.sim.model": """
                def step(seed):
                    return seed
                """,
                "repro.tools.scratch": """
                import random

                def roll():
                    return random.random()
                """,
            }
        )
        assert findings == []

    def test_near_miss_sink_inside_rng_module(self):
        findings = run_flow(
            {
                "repro.registry": """
                SPECS = {"fig1": "repro.experiments.fig01:run"}
                """,
                "repro.experiments.fig01": """
                from repro.sim.rng import RandomStreams

                def run(seed):
                    return RandomStreams(seed).stream("arrivals").random()
                """,
                "repro.sim.rng": """
                import random

                class RandomStreams:
                    def __init__(self, seed=0):
                        self._seed = seed

                    def stream(self, name):
                        return random.Random(self._seed)
                """,
            }
        )
        assert findings == []


class TestPW103PickleSafety:
    def test_regression_fixture_lambda_in_taskspec_kwargs(self):
        # Derived from the runner's real pool crossing: TaskSpec.kwargs is
        # pickled into the worker by pool.submit(execute_task, spec) — the
        # shape PR 5's worker.unpicklable fault exercises at runtime.
        findings = run_flow(
            {
                "repro.runner.plan": """
                from repro.runner.tasks import TaskSpec

                def build(obs):
                    transform = lambda x: x + 1
                    return TaskSpec(
                        experiment_id="fig1",
                        part="p0",
                        target="repro.experiments.fig01:run",
                        kwargs={"transform": transform},
                        seed=0,
                        obs=obs,
                    )
                """,
            }
        )
        assert flow_codes(findings) == ["PW103"]
        assert "lambda" in findings[0].message

    def test_true_positive_open_handle_via_submit(self):
        findings = run_flow(
            {
                "repro.runner.plan": """
                from repro.runner.tasks import execute_task

                def drive(pool, spec):
                    handle = open("log.txt")
                    pool.submit(execute_task, spec, handle)
                """,
            }
        )
        assert flow_codes(findings) == ["PW103"]
        assert "open file handle" in findings[0].message

    def test_true_positive_module_level_mutable_state(self):
        findings = run_flow(
            {
                "repro.runner.plan": """
                from repro.runner.tasks import TaskSpec

                _SHARED = {}

                def build(obs):
                    return TaskSpec(
                        experiment_id="fig1",
                        part="p0",
                        target="repro.experiments.fig01:run",
                        kwargs={"state": _SHARED},
                        seed=0,
                        obs=obs,
                    )
                """,
            }
        )
        assert flow_codes(findings) == ["PW103"]
        assert "diverges silently" in findings[0].message

    def test_near_miss_plain_picklable_values(self):
        findings = run_flow(
            {
                "repro.runner.plan": """
                from repro.runner.tasks import TaskSpec

                def build(obs, n):
                    return TaskSpec(
                        experiment_id="fig1",
                        part="p0",
                        target="repro.experiments.fig01:run",
                        kwargs={"n": n, "scale": 2.0},
                        seed=0,
                        obs=obs,
                    )
                """,
            }
        )
        assert findings == []

    def test_near_miss_lambda_outside_pool_boundary(self):
        findings = run_flow(
            {
                "repro.runner.plan": """
                def local_only(values):
                    transform = lambda x: x + 1
                    return [transform(v) for v in values]
                """,
            }
        )
        assert findings == []


class TestPW104EventKinds:
    def test_true_positive_dead_subscription(self):
        findings = run_flow(
            {
                "repro.mac80211.medium": """
                def send(trace, now):
                    trace.emit(now, "medium", "mac.tx", ok=True)
                """,
                "repro.analysis": """
                def view(recorder):
                    return recorder.filter(kind="mac.txx")
                """,
            }
        )
        assert flow_codes(findings) == ["PW104"]
        assert "mac.txx" in findings[0].message

    def test_true_positive_emit_bypasses_wants_guard(self):
        findings = run_flow(
            {
                "repro.mac80211.medium": """
                def send(trace, now):
                    if trace.wants("mac.tx"):
                        trace.emit(now, "medium", "mac.tx", ok=True)
                        trace.emit(now, "medium", "mac.collision", n=2)
                """,
            }
        )
        assert flow_codes(findings) == ["PW104"]
        assert "mac.collision" in findings[0].message

    def test_near_miss_consistent_kinds(self):
        findings = run_flow(
            {
                "repro.mac80211.medium": """
                def send(trace, now):
                    if trace.wants("mac.tx"):
                        trace.emit(now, "medium", "mac.tx", ok=True)
                """,
                "repro.analysis": """
                def view(recorder):
                    return recorder.filter(kind="mac.tx")
                """,
            }
        )
        assert findings == []

    def test_near_miss_no_emits_indexed_at_all(self):
        # Linting a subtree without the producers must stay quiet.
        findings = run_flow(
            {
                "repro.analysis": """
                def view(recorder):
                    return recorder.filter(kind="mac.tx")
                """,
            }
        )
        assert findings == []

    def test_near_miss_wants_on_non_trace_receiver(self):
        # FaultPlan.wants shares the method name; receiver naming keeps
        # it out of the trace-kind pool.
        findings = run_flow(
            {
                "repro.mac80211.medium": """
                def send(trace, now):
                    trace.emit(now, "medium", "mac.tx", ok=True)
                """,
                "repro.cli_like": """
                def arm(fault_plan):
                    if fault_plan.wants("manifest.interrupt"):
                        return True
                """,
            }
        )
        assert findings == []


class TestPW105UnitFlow:
    def test_true_positive_cross_module_positional(self):
        findings = run_flow(
            {
                "repro.rf.link": """
                def path_gain(tx_dbm, dist_m):
                    return tx_dbm - dist_m
                """,
                "repro.experiments.fig02": """
                from repro.rf.link import path_gain

                def run(power_mw, span_ft):
                    return path_gain(power_mw, span_ft)
                """,
            }
        )
        assert flow_codes(findings) == ["PW105", "PW105"]
        assert "tx_dbm" in findings[0].message

    def test_true_positive_constructor_args(self):
        findings = run_flow(
            {
                "repro.rf.link": """
                class Antenna:
                    def __init__(self, gain_dbi):
                        self.gain_dbi = gain_dbi
                """,
                "repro.experiments.fig02": """
                from repro.rf.link import Antenna

                def run(power_mw):
                    return Antenna(power_mw)
                """,
            }
        )
        assert flow_codes(findings) == ["PW105"]
        assert "Antenna" in findings[0].message

    def test_near_miss_matching_suffixes_and_conversion(self):
        findings = run_flow(
            {
                "repro.rf.link": """
                def path_gain(tx_dbm, dist_m):
                    return tx_dbm - dist_m
                """,
                "repro.experiments.fig02": """
                from repro.rf.link import path_gain
                from repro.units import mw_to_dbm

                def run(power_mw, span_m):
                    return path_gain(mw_to_dbm(power_mw), span_m)
                """,
            }
        )
        assert findings == []

    def test_near_miss_unresolved_callee(self):
        findings = run_flow(
            {
                "repro.experiments.fig02": """
                import numpy as np

                def run(power_mw):
                    return np.log10(power_mw)
                """,
            }
        )
        assert findings == []


class TestFlowPragmas:
    def test_pragma_suppresses_flow_finding(self):
        findings = run_flow(
            {
                "repro.sim.alpha": """
                class Alpha:
                    def __init__(self, streams):
                        self.rng = streams.stream("noise")  # lint: ignore[PW101] intentional pairing
                """,
                "repro.sim.beta": """
                class Beta:
                    def __init__(self, streams):
                        self.rng = streams.stream("noise")
                """,
            }
        )
        # Only the un-pragma'd site reports.
        assert flow_codes(findings) == ["PW101"]
        assert findings[0].path == "repro/sim/beta.py"


def _write_tree(root, modules):
    """Materialise {relative path: source} under ``root``."""
    for relative, source in modules.items():
        target = root / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")


PROJECT = {
    "src/repro/registry.py": """
    SPECS = {"fig1": "repro.experiments.fig01:run"}
    """,
    "src/repro/experiments/fig01.py": """
    from repro.sim.model import step

    def run(seed):
        return step(seed)
    """,
    "src/repro/sim/model.py": """
    import random

    def step(seed):
        return random.random()
    """,
}


class TestFlowEngineAndCache:
    def make_config(self, tmp_path):
        return LintConfig(root=tmp_path, baseline="lint_baseline.json")

    def test_cold_then_warm_reuses_everything(self, tmp_path):
        _write_tree(tmp_path, PROJECT)
        config = self.make_config(tmp_path)
        cold, cold_stats = flow_lint_paths(
            [str(tmp_path / "src")], config, use_baseline=False
        )
        warm, warm_stats = flow_lint_paths(
            [str(tmp_path / "src")], config, use_baseline=False
        )
        assert cold_stats.parsed == 3 and cold_stats.reused == 0
        assert warm_stats.parsed == 0 and warm_stats.reused == 3
        assert [f.to_dict() for f in cold] == [f.to_dict() for f in warm]
        # PW002 (per-file) and PW102 (flow) both fire on the sink.
        assert sorted({f.code for f in warm}) == ["PW002", "PW102"]

    def test_edit_invalidates_only_that_module(self, tmp_path):
        _write_tree(tmp_path, PROJECT)
        config = self.make_config(tmp_path)
        flow_lint_paths([str(tmp_path / "src")], config, use_baseline=False)
        model = tmp_path / "src/repro/sim/model.py"
        model.write_text(
            "def step(seed):\n    return seed\n", encoding="utf-8"
        )
        findings, stats = flow_lint_paths(
            [str(tmp_path / "src")], config, use_baseline=False
        )
        assert stats.parsed == 1 and stats.reused == 2
        assert findings == []

    def test_changed_only_restricts_report(self, tmp_path):
        _write_tree(tmp_path, PROJECT)
        config = self.make_config(tmp_path)
        flow_lint_paths([str(tmp_path / "src")], config, use_baseline=False)
        quiet, _ = flow_lint_paths(
            [str(tmp_path / "src")],
            config,
            use_baseline=False,
            changed_only=True,
        )
        assert quiet == []
        # Touching the entry module reports only its findings; the sink
        # in the unchanged module is withheld (documented tradeoff).
        fig01 = tmp_path / "src/repro/experiments/fig01.py"
        fig01.write_text(
            fig01.read_text(encoding="utf-8") + "\n", encoding="utf-8"
        )
        changed, _ = flow_lint_paths(
            [str(tmp_path / "src")],
            config,
            use_baseline=False,
            changed_only=True,
        )
        assert {f.path for f in changed} <= {"src/repro/experiments/fig01.py"}

    def test_no_cache_mode_never_writes(self, tmp_path):
        _write_tree(tmp_path, PROJECT)
        config = self.make_config(tmp_path)
        flow_lint_paths(
            [str(tmp_path / "src")],
            config,
            use_baseline=False,
            use_cache=False,
        )
        assert not (tmp_path / ".repro_cache/flow_index.json").exists()

    def test_cache_rejects_config_change(self, tmp_path):
        _write_tree(tmp_path, PROJECT)
        config = self.make_config(tmp_path)
        flow_lint_paths([str(tmp_path / "src")], config, use_baseline=False)
        from dataclasses import replace

        narrowed = replace(config, unit_suffixes=("dbm",))
        assert config_digest(narrowed) != config_digest(config)
        cache = FlowCache.for_config(narrowed)
        cache.path = tmp_path / ".repro_cache/flow_index.json"
        cache.config_digest = config_digest(narrowed)
        assert cache.load() is False

    def test_corrupt_cache_degrades_to_cold(self, tmp_path):
        _write_tree(tmp_path, PROJECT)
        config = self.make_config(tmp_path)
        flow_lint_paths([str(tmp_path / "src")], config, use_baseline=False)
        cache_file = tmp_path / ".repro_cache/flow_index.json"
        cache_file.write_text("{not json", encoding="utf-8")
        findings, stats = flow_lint_paths(
            [str(tmp_path / "src")], config, use_baseline=False
        )
        assert stats.parsed == 3 and stats.reused == 0
        assert sorted({f.code for f in findings}) == ["PW002", "PW102"]

    def test_syntax_error_yields_pw000_and_caches(self, tmp_path):
        _write_tree(
            tmp_path, {"src/repro/broken.py": "def nope(:\n    pass\n"}
        )
        config = self.make_config(tmp_path)
        findings, _ = flow_lint_paths(
            [str(tmp_path / "src")], config, use_baseline=False
        )
        assert flow_codes(findings) == ["PW000"]
        replay, stats = flow_lint_paths(
            [str(tmp_path / "src")], config, use_baseline=False
        )
        assert stats.reused == 1 and flow_codes(replay) == ["PW000"]

    def test_content_hash_is_stable(self):
        assert content_hash("x = 1\n") == content_hash("x = 1\n")
        assert content_hash("x = 1\n") != content_hash("x = 2\n")


class TestSarif:
    def test_document_shape_and_determinism(self, tmp_path):
        _write_tree(tmp_path, PROJECT)
        config = LintConfig(root=tmp_path)
        findings, _ = flow_lint_paths(
            [str(tmp_path / "src")], config, use_baseline=False
        )
        first = render_sarif(findings)
        second = render_sarif(findings)
        assert first == second
        document = json.loads(first)
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        rule_ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
        assert "PW000" in rule_ids and "PW101" in rule_ids
        assert rule_ids == sorted(rule_ids)
        result = run["results"][0]
        assert result["ruleId"] in ("PW002", "PW102")
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith(".py")
        assert location["region"]["startLine"] >= 1
        assert "reproLint/v1" in result["partialFingerprints"]

    def test_baselined_findings_become_suppressions(self):
        from repro.lint.findings import Finding

        finding = Finding(
            code="PW102",
            message="m",
            path="src/repro/x.py",
            line=3,
            severity=Severity.ERROR,
            line_text="x",
        )
        finding.baselined = True
        document = json.loads(render_sarif([finding]))
        result = document["runs"][0]["results"][0]
        assert result["suppressions"][0]["status"] == "accepted"


class TestFlowCli:
    def run_cli(self, tmp_path, *argv):
        _write_tree(
            tmp_path,
            {
                "pyproject.toml": """
                [tool.repro-lint]
                sim-packages = ["sim"]
                """,
                **PROJECT,
            },
        )
        return lint_main(
            [
                str(tmp_path / "src"),
                "--config",
                str(tmp_path / "pyproject.toml"),
                *argv,
            ]
        )

    def test_flow_exit_one_on_findings(self, tmp_path, capsys):
        code = self.run_cli(tmp_path, "--flow", "--no-baseline")
        captured = capsys.readouterr()
        assert code == 1
        assert "PW102" in captured.out
        assert "flow:" in captured.err

    def test_changed_requires_flow(self, capsys):
        assert lint_main(["--changed"]) == 2
        assert "--changed requires --flow" in capsys.readouterr().err

    def test_changed_rejects_prune(self, capsys):
        assert lint_main(["--flow", "--changed", "--prune-baseline"]) == 2
        assert "full run" in capsys.readouterr().err

    def test_sarif_format_round_trips(self, tmp_path, capsys):
        code = self.run_cli(
            tmp_path, "--flow", "--no-baseline", "--format", "sarif"
        )
        captured = capsys.readouterr()
        assert code == 1
        document = json.loads(captured.out)
        assert document["runs"][0]["results"]

    def test_flow_cache_flag_places_cache(self, tmp_path):
        cache_file = tmp_path / "elsewhere" / "flow.json"
        self.run_cli(
            tmp_path,
            "--flow",
            "--no-baseline",
            "--flow-cache",
            str(cache_file),
        )
        assert cache_file.is_file()

    def test_no_flow_cache_leaves_no_file(self, tmp_path):
        self.run_cli(tmp_path, "--flow", "--no-baseline", "--no-flow-cache")
        assert not (tmp_path / ".repro_cache").exists()


class TestBaselineHygieneCli:
    def seed_project(self, tmp_path):
        _write_tree(
            tmp_path,
            {
                "pyproject.toml": """
                [tool.repro-lint]
                sim-packages = ["sim"]
                """,
                **PROJECT,
            },
        )

    def cli(self, tmp_path, *argv):
        return lint_main(
            [
                str(tmp_path / "src"),
                "--config",
                str(tmp_path / "pyproject.toml"),
                *argv,
            ]
        )

    def test_stale_entry_warns_and_prunes(self, tmp_path, capsys):
        self.seed_project(tmp_path)
        baseline = tmp_path / "lint_baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "version": 1,
                    "entries": [
                        {
                            "fingerprint": "feedfacefeedface",
                            "code": "PW002",
                            "path": "src/repro/sim/model.py",
                            "line": 1,
                            "line_text": "gone",
                            "justification": "obsolete",
                        }
                    ],
                }
            ),
            encoding="utf-8",
        )
        self.cli(tmp_path)
        assert "stale baseline entry feedfacefeedface" in capsys.readouterr().err
        self.cli(tmp_path, "--prune-baseline")
        captured = capsys.readouterr()
        assert "pruned 1 stale entry" in captured.err
        assert json.loads(baseline.read_text())["entries"] == []

    def test_entry_for_unlinted_path_is_not_stale(self, tmp_path, capsys):
        self.seed_project(tmp_path)
        baseline = tmp_path / "lint_baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "version": 1,
                    "entries": [
                        {
                            "fingerprint": "feedfacefeedface",
                            "code": "PW002",
                            "path": "elsewhere/module.py",
                            "line": 1,
                            "line_text": "gone",
                            "justification": "still valid elsewhere",
                        }
                    ],
                }
            ),
            encoding="utf-8",
        )
        self.cli(tmp_path)
        assert "stale baseline entry" not in capsys.readouterr().err
        self.cli(tmp_path, "--prune-baseline")
        capsys.readouterr()
        assert len(json.loads(baseline.read_text())["entries"]) == 1

    def test_live_entry_keeps_justification_after_prune(self, tmp_path, capsys):
        self.seed_project(tmp_path)
        # Baseline the real PW002/PW102 findings, fill justifications,
        # then prune: nothing is stale, justifications survive.
        assert self.cli(tmp_path, "--write-baseline", "--no-baseline") == 0
        baseline = tmp_path / "lint_baseline.json"
        document = json.loads(baseline.read_text())
        for entry in document["entries"]:
            entry["justification"] = "kept on purpose"
        baseline.write_text(json.dumps(document), encoding="utf-8")
        capsys.readouterr()
        assert self.cli(tmp_path, "--prune-baseline") == 0
        assert "pruned 0" in capsys.readouterr().err
        entries = json.loads(baseline.read_text())["entries"]
        assert entries and all(
            entry["justification"] == "kept on purpose" for entry in entries
        )


class TestRealTree:
    def test_src_repro_flow_is_clean(self, tmp_path):
        from repro.lint.config import load_config

        config = load_config(REPO_ROOT / "pyproject.toml")
        findings, _ = flow_lint_paths(
            [str(REPO_ROOT / "src" / "repro")],
            config,
            use_baseline=True,
            use_cache=True,
            cache_path=tmp_path / "flow_index.json",
        )
        active = [f for f in findings if not f.baselined]
        assert active == [], [f.render_text() for f in active]

    def test_flow_pass_is_deterministic_on_real_tree(self, tmp_path):
        from repro.lint.config import load_config

        config = load_config(REPO_ROOT / "pyproject.toml")
        runs = []
        for _ in range(2):
            findings, _ = flow_lint_paths(
                [str(REPO_ROOT / "src" / "repro")],
                config,
                use_baseline=False,
                use_cache=True,
                cache_path=tmp_path / "flow_index.json",
            )
            runs.append(render_sarif(findings))
        assert runs[0] == runs[1]
