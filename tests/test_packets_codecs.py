"""Byte-level codec tests: 802.11, LLC/SNAP, IPv4 (+IP_Power), UDP."""

import pytest

from repro.errors import ChecksumError, CodecError, TruncatedFrameError
from repro.packets.bytesutil import hexdump, internet_checksum
from repro.packets.dot11 import (
    BROADCAST_MAC,
    Dot11Beacon,
    Dot11Data,
    Dot11FrameControl,
    Dot11Header,
    FrameType,
    MacAddress,
)
from repro.packets.ipv4 import IP_OPTION_POWER, IpPowerOption, IPv4Packet
from repro.packets.llc import ETHERTYPE_IPV4, LlcSnapHeader
from repro.packets.udp import UdpDatagram


class TestChecksum:
    def test_rfc_example_validates(self):
        header = bytes.fromhex("45000073000040004011b861c0a80001c0a800c7")
        assert internet_checksum(header) == 0

    def test_odd_length_padded(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    def test_empty_is_all_ones(self):
        assert internet_checksum(b"") == 0xFFFF


class TestHexdump:
    def test_renders_ascii(self):
        out = hexdump(b"PoWiFi")
        assert "50 6f 57 69 46 69" in out and "|PoWiFi|" in out

    def test_nonprintable_dotted(self):
        assert "|..|" in hexdump(b"\x00\xff")


class TestMacAddress:
    def test_parse_and_str_round_trip(self):
        text = "02:00:00:aa:bb:cc"
        assert str(MacAddress.from_string(text)) == text

    def test_broadcast_detection(self):
        assert BROADCAST_MAC.is_broadcast
        assert BROADCAST_MAC.is_multicast

    def test_unicast_not_multicast(self):
        assert not MacAddress.from_string("02:00:00:00:00:01").is_broadcast

    def test_rejects_short(self):
        with pytest.raises(CodecError):
            MacAddress(b"\x00" * 5)

    def test_rejects_malformed_text(self):
        with pytest.raises(CodecError):
            MacAddress.from_string("zz:00:00:00:00:01")


class TestFrameControl:
    def test_round_trip(self):
        fc = Dot11FrameControl(FrameType.DATA, 0, from_ds=True, retry=True)
        assert Dot11FrameControl.decode(fc.encode()) == fc

    def test_subtype_out_of_range(self):
        fc = Dot11FrameControl(FrameType.DATA, 16)
        with pytest.raises(CodecError):
            fc.encode()


class TestDot11Header:
    def _header(self):
        mac = MacAddress.from_string("02:00:00:00:00:01")
        return Dot11Header(
            frame_control=Dot11FrameControl(FrameType.DATA, 0, from_ds=True),
            duration_us=0,
            addr1=BROADCAST_MAC,
            addr2=mac,
            addr3=mac,
            sequence=1234,
        )

    def test_round_trip(self):
        header = self._header()
        decoded, rest = Dot11Header.decode(header.encode())
        assert decoded == header and rest == b""

    def test_header_is_24_bytes(self):
        assert len(self._header().encode()) == 24

    def test_truncated_rejected(self):
        with pytest.raises(TruncatedFrameError):
            Dot11Header.decode(b"\x00" * 10)

    def test_sequence_out_of_range(self):
        header = self._header()
        bad = Dot11Header(
            frame_control=header.frame_control,
            duration_us=0,
            addr1=header.addr1,
            addr2=header.addr2,
            addr3=header.addr3,
            sequence=5000,
        )
        with pytest.raises(CodecError):
            bad.encode()


class TestDot11Data:
    def test_broadcast_round_trip_with_fcs(self):
        mac = MacAddress.from_string("02:00:00:00:00:01")
        frame = Dot11Data.broadcast(mac, mac, payload=b"hello powifi", sequence=7)
        decoded = Dot11Data.decode(frame.encode(with_fcs=True))
        assert decoded.payload == b"hello powifi"
        assert decoded.header.addr1.is_broadcast
        assert decoded.header.sequence == 7

    def test_fcs_corruption_detected(self):
        mac = MacAddress.from_string("02:00:00:00:00:01")
        raw = bytearray(Dot11Data.broadcast(mac, mac, payload=b"x" * 64).encode())
        raw[30] ^= 0xFF
        with pytest.raises(ChecksumError):
            Dot11Data.decode(bytes(raw))

    def test_decode_without_fcs(self):
        mac = MacAddress.from_string("02:00:00:00:00:01")
        frame = Dot11Data.broadcast(mac, mac, payload=b"abc")
        decoded = Dot11Data.decode(frame.encode(with_fcs=False), with_fcs=False)
        assert decoded.payload == b"abc"

    def test_on_air_length(self):
        mac = MacAddress.from_string("02:00:00:00:00:01")
        frame = Dot11Data.broadcast(mac, mac, payload=b"\x00" * 100)
        assert frame.on_air_length == 24 + 100 + 4
        assert len(frame.encode(with_fcs=True)) == frame.on_air_length

    def test_beacon_rejected_as_data(self):
        beacon = Dot11Beacon(
            bssid=MacAddress.from_string("02:00:00:00:00:01"), ssid="net"
        )
        with pytest.raises(CodecError):
            Dot11Data.decode(beacon.encode())


class TestBeacon:
    def test_round_trip(self):
        beacon = Dot11Beacon(
            bssid=MacAddress.from_string("02:00:00:00:00:02"),
            ssid="PoWiFi-Home",
            beacon_interval_tu=100,
            sequence=42,
        )
        decoded = Dot11Beacon.decode(beacon.encode())
        assert decoded.ssid == "PoWiFi-Home"
        assert decoded.beacon_interval_tu == 100
        assert decoded.sequence == 42

    def test_ssid_too_long(self):
        beacon = Dot11Beacon(
            bssid=MacAddress.from_string("02:00:00:00:00:02"), ssid="x" * 33
        )
        with pytest.raises(CodecError):
            beacon.encode()

    def test_fcs_corruption_detected(self):
        beacon = Dot11Beacon(
            bssid=MacAddress.from_string("02:00:00:00:00:02"), ssid="n"
        )
        raw = bytearray(beacon.encode())
        raw[5] ^= 0x01
        with pytest.raises(ChecksumError):
            Dot11Beacon.decode(bytes(raw))


class TestLlcSnap:
    def test_round_trip(self):
        header = LlcSnapHeader()
        decoded, rest = LlcSnapHeader.decode(header.encode() + b"payload")
        assert decoded.ethertype == ETHERTYPE_IPV4
        assert rest == b"payload"

    def test_length(self):
        assert len(LlcSnapHeader().encode()) == LlcSnapHeader.LENGTH

    def test_rejects_non_snap(self):
        with pytest.raises(CodecError):
            LlcSnapHeader.decode(b"\x00" * 8)

    def test_rejects_truncated(self):
        with pytest.raises(TruncatedFrameError):
            LlcSnapHeader.decode(b"\xaa\xaa")


class TestIpPowerOption:
    def test_round_trip(self):
        option = IpPowerOption(interface_id=2)
        assert IpPowerOption.decode(option.encode()) == option

    def test_type_byte(self):
        assert IpPowerOption(0).encode()[0] == IP_OPTION_POWER

    def test_interface_id_range(self):
        with pytest.raises(CodecError):
            IpPowerOption(interface_id=70000).encode()


class TestIPv4:
    def test_plain_round_trip(self):
        packet = IPv4Packet(src="192.168.1.1", dst="192.168.1.50", payload=b"data")
        decoded = IPv4Packet.decode(packet.encode())
        assert decoded.src == "192.168.1.1"
        assert decoded.dst == "192.168.1.50"
        assert decoded.payload == b"data"
        assert decoded.power_option is None

    def test_power_option_round_trip(self):
        packet = IPv4Packet(
            src="192.168.1.1",
            dst="255.255.255.255",
            payload=b"power",
            power_option=IpPowerOption(interface_id=1),
        )
        decoded = IPv4Packet.decode(packet.encode())
        assert decoded.is_power_packet
        assert decoded.power_option.interface_id == 1

    def test_checksum_corruption_detected(self):
        raw = bytearray(IPv4Packet(src="10.0.0.1", dst="10.0.0.2").encode())
        raw[8] ^= 0xFF  # flip TTL bits
        with pytest.raises(ChecksumError):
            IPv4Packet.decode(bytes(raw))

    def test_header_length_includes_options(self):
        plain = IPv4Packet(src="10.0.0.1", dst="10.0.0.2")
        marked = IPv4Packet(
            src="10.0.0.1", dst="10.0.0.2", power_option=IpPowerOption(0)
        )
        assert plain.header_length == 20
        assert marked.header_length == 24

    def test_total_length_field(self):
        packet = IPv4Packet(src="10.0.0.1", dst="10.0.0.2", payload=b"\x00" * 50)
        raw = packet.encode()
        total = int.from_bytes(raw[2:4], "big")
        assert total == len(raw) == 70

    def test_malformed_address_rejected(self):
        with pytest.raises(CodecError):
            IPv4Packet(src="10.0.0", dst="10.0.0.2").encode()

    def test_noop_options_skipped(self):
        packet = IPv4Packet(
            src="10.0.0.1", dst="10.0.0.2", power_option=IpPowerOption(3)
        )
        raw = bytearray(packet.encode())
        # Replace the padding (last option byte is already 0/EOL); insert a
        # no-op before the power option by hand-crafting is complex, so we
        # simply verify the padded options area decodes.
        decoded = IPv4Packet.decode(bytes(raw))
        assert decoded.power_option.interface_id == 3


class TestUdp:
    def test_round_trip_with_checksum(self):
        datagram = UdpDatagram(src_port=47000, dst_port=47000, payload=b"p" * 32)
        raw = datagram.encode("192.168.1.1", "255.255.255.255")
        decoded = UdpDatagram.decode(raw, "192.168.1.1", "255.255.255.255")
        assert decoded == datagram

    def test_zero_checksum_accepted(self):
        raw = UdpDatagram(src_port=1, dst_port=2, payload=b"x").encode()
        decoded = UdpDatagram.decode(raw, "10.0.0.1", "10.0.0.2")
        assert decoded.payload == b"x"

    def test_checksum_corruption_detected(self):
        raw = bytearray(
            UdpDatagram(src_port=1, dst_port=2, payload=b"abcd").encode(
                "10.0.0.1", "10.0.0.2"
            )
        )
        raw[-1] ^= 0x55
        with pytest.raises(ChecksumError):
            UdpDatagram.decode(bytes(raw), "10.0.0.1", "10.0.0.2")

    def test_length_field(self):
        datagram = UdpDatagram(src_port=1, dst_port=2, payload=b"\x00" * 10)
        assert datagram.length == 18

    def test_port_range_validation(self):
        with pytest.raises(CodecError):
            UdpDatagram(src_port=-1, dst_port=2)
        with pytest.raises(CodecError):
            UdpDatagram(src_port=1, dst_port=65536)

    def test_truncated_rejected(self):
        with pytest.raises(TruncatedFrameError):
            UdpDatagram.decode(b"\x00\x01")
