"""Assembled-harvester, storage, and waveform tests (the §4.2 claims)."""

import math

import pytest

from repro.errors import CircuitError
from repro.harvester.harvester import (
    battery_free_camera_harvester,
    battery_free_harvester,
    battery_recharging_harvester,
)
from repro.harvester.storage import (
    Capacitor,
    LiIonCoinCell,
    NiMHBattery,
    SuperCapacitor,
)
from repro.harvester.waveform import Burst, RectifierWaveformSimulator
from repro.mac80211.channels import channel_frequency_hz


class TestHarvesterSensitivity:
    def test_battery_free_sensitivity_matches_paper(self):
        """§4.2(b): battery-free operates down to -17.8 dBm."""
        sensitivity = battery_free_harvester().sensitivity_dbm()
        assert sensitivity == pytest.approx(-17.8, abs=0.8)

    def test_battery_recharging_sensitivity_matches_paper(self):
        """§4.2(b): battery-recharging operates down to -19.3 dBm."""
        sensitivity = battery_recharging_harvester().sensitivity_dbm()
        assert sensitivity == pytest.approx(-19.3, abs=0.8)

    def test_battery_version_more_sensitive(self):
        """No cold start -> ~1.5 dB better sensitivity."""
        free = battery_free_harvester().sensitivity_dbm()
        recharging = battery_recharging_harvester().sensitivity_dbm()
        gap = free - recharging
        assert 1.0 < gap < 3.0

    def test_camera_harvester_least_sensitive(self):
        """The standalone bq25570's higher cold start trims the range."""
        camera = battery_free_camera_harvester().sensitivity_dbm()
        temp = battery_free_harvester().sensitivity_dbm()
        assert camera > temp

    def test_sensitivity_uniform_across_channels(self):
        """§4.2(b): the multi-channel design works on ch 1, 6 and 11 alike."""
        harvester = battery_free_harvester()
        values = [
            harvester.sensitivity_dbm(channel_frequency_hz(ch)) for ch in (1, 6, 11)
        ]
        assert max(values) - min(values) < 0.5


class TestHarvesterPowerCurve:
    def test_output_scales_with_input(self):
        harvester = battery_free_harvester()
        outputs = [
            harvester.rectifier_output_power_w(dbm) for dbm in (-15, -10, -5, 0, 4)
        ]
        assert outputs == sorted(outputs)
        assert outputs[0] > 0

    def test_zero_below_sensitivity(self):
        harvester = battery_free_harvester()
        assert harvester.rectifier_output_power_w(-25.0) == 0.0

    def test_plus4dbm_output_near_paper(self):
        """Fig 10: ~150 uW at +4 dBm."""
        for harvester in (battery_free_harvester(), battery_recharging_harvester()):
            output = harvester.rectifier_output_power_w(4.0)
            assert 100e-6 < output < 250e-6

    def test_channels_within_few_percent(self):
        harvester = battery_free_harvester()
        outputs = [
            harvester.rectifier_output_power_w(0.0, channel_frequency_hz(ch))
            for ch in (1, 6, 11)
        ]
        assert max(outputs) / min(outputs) < 1.1

    def test_dc_output_below_rectifier_output(self):
        harvester = battery_free_harvester()
        point = harvester.operating_point(-5.0)
        assert 0 < point.dc_output_w < point.rectifier_output_w

    def test_operating_point_regimes(self):
        harvester = battery_free_harvester()
        assert harvester.operating_point(-25.0).regime == "off"
        assert harvester.operating_point(0.0).regime in ("bulk", "trickle")

    def test_is_operational_consistent_with_sensitivity(self):
        harvester = battery_free_harvester()
        sensitivity = harvester.sensitivity_dbm()
        assert harvester.is_operational(sensitivity + 0.5)
        assert not harvester.is_operational(sensitivity - 1.0)

    def test_sensitivity_scan_failure_raises(self):
        harvester = battery_free_harvester()
        with pytest.raises(CircuitError):
            harvester.sensitivity_dbm(ceiling_dbm=-25.0)


class TestCapacitor:
    def test_energy_voltage_relation(self):
        cap = Capacitor(capacitance_f=1e-6, initial_voltage_v=2.0)
        assert cap.energy_j == pytest.approx(0.5 * 1e-6 * 4.0)

    def test_deposit_withdraw_round_trip(self):
        cap = Capacitor(capacitance_f=1e-6)
        cap.deposit(1e-6)
        assert cap.withdraw(1e-6)
        assert cap.energy_j == pytest.approx(0.0, abs=1e-12)

    def test_withdraw_beyond_stored_fails(self):
        cap = Capacitor(capacitance_f=1e-6)
        cap.deposit(1e-9)
        assert not cap.withdraw(1e-6)
        assert cap.energy_j == pytest.approx(1e-9)

    def test_leakage_decays_exponentially(self):
        cap = Capacitor(capacitance_f=1e-6, leakage_resistance_ohm=1e6, initial_voltage_v=1.0)
        cap.leak(1.0)  # tau = 1 s
        assert cap.voltage_v == pytest.approx(math.exp(-1.0))

    def test_infinite_leakage_resistance_holds_charge(self):
        cap = Capacitor(capacitance_f=1e-6, initial_voltage_v=1.0)
        cap.leak(100.0)
        assert cap.voltage_v == 1.0

    def test_validation(self):
        with pytest.raises(CircuitError):
            Capacitor(capacitance_f=0.0)
        cap = Capacitor(capacitance_f=1e-6)
        with pytest.raises(CircuitError):
            cap.deposit(-1.0)
        with pytest.raises(CircuitError):
            cap.leak(-1.0)


class TestSuperCapacitor:
    def test_paper_values(self):
        supercap = SuperCapacitor()
        assert supercap.capacitance_f == pytest.approx(6.8e-3)
        assert supercap.activate_voltage_v == pytest.approx(3.1)
        assert supercap.floor_voltage_v == pytest.approx(2.4)

    def test_usable_energy_covers_one_image(self):
        """§5.2 consistency: the 3.1->2.4 V swing must cover one 10.4 mJ
        capture with margin."""
        supercap = SuperCapacitor()
        assert supercap.usable_energy_j > 10.4e-3
        assert supercap.usable_energy_j < 3 * 10.4e-3


class TestBatteries:
    def test_nimh_paper_parameters(self):
        battery = NiMHBattery()
        assert battery.nominal_voltage_v == pytest.approx(2.4)
        assert battery.capacity_mah == pytest.approx(750.0)

    def test_liion_paper_parameters(self):
        battery = LiIonCoinCell()
        assert battery.nominal_voltage_v == pytest.approx(3.0)
        assert battery.capacity_mah == pytest.approx(1.0)

    def test_charging_accumulates(self):
        battery = NiMHBattery()
        battery.charge_with_power(2.4e-3, 3600.0)  # 1 mA for an hour
        assert battery.stored_mah == pytest.approx(1.0 * battery.charge_efficiency)

    def test_charge_clamped_at_capacity(self):
        battery = LiIonCoinCell(stored_mah=1.0)
        battery.charge_with_power(1.0, 3600.0)
        assert battery.stored_mah == battery.capacity_mah

    def test_discharge_energy(self):
        battery = NiMHBattery(stored_mah=100.0)
        assert battery.discharge_energy(2.77e-6)
        assert battery.stored_mah < 100.0

    def test_discharge_beyond_capacity_fails(self):
        battery = LiIonCoinCell(stored_mah=0.0)
        assert not battery.discharge_energy(1.0)

    def test_self_discharge(self):
        battery = NiMHBattery(stored_mah=100.0)
        battery.self_discharge(86400.0 * 30)
        assert battery.stored_mah < 100.0

    def test_state_of_charge(self):
        battery = LiIonCoinCell(stored_mah=0.5)
        assert battery.state_of_charge == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(CircuitError):
            NiMHBattery(stored_mah=10_000.0)
        battery = NiMHBattery()
        with pytest.raises(CircuitError):
            battery.charge_with_power(-1.0, 1.0)
        with pytest.raises(CircuitError):
            battery.discharge_energy(-1.0)


class TestWaveform:
    def _simulator(self, incident_dbm=-12.0):
        harvester = battery_free_harvester()
        reservoir = Capacitor(capacitance_f=1e-6, leakage_resistance_ohm=3e5)
        return RectifierWaveformSimulator(
            harvester, reservoir, incident_power_dbm=incident_dbm
        )

    def test_continuous_transmission_charges_up(self):
        sim = self._simulator()
        samples = sim.run([Burst(0.0, 0.05)], duration_s=0.05)
        assert samples[-1].voltage_v > 0.3

    def test_voltage_decays_in_silence(self):
        sim = self._simulator()
        samples = sim.run([Burst(0.0, 0.01)], duration_s=0.05)
        peak = max(s.voltage_v for s in samples)
        assert samples[-1].voltage_v < peak

    def test_bursty_schedule_stays_below_continuous(self):
        continuous = self._simulator()
        steady = continuous.run([Burst(0.0, 0.05)], 0.05)[-1].voltage_v
        bursty = self._simulator()
        bursts = [Burst(i * 0.002, 0.0004) for i in range(25)]  # 20 % duty
        capped = max(s.voltage_v for s in bursty.run(bursts, 0.05))
        assert capped < steady

    def test_steady_state_below_voc(self):
        sim = self._simulator()
        assert 0 < sim.steady_state_voltage <= sim._voc

    def test_negligible_power_stays_microvolt(self):
        sim = self._simulator(incident_dbm=-60.0)
        samples = sim.run([Burst(0.0, 0.01)], duration_s=0.01)
        # At -60 dBm the doubler's soft knee leaves only microvolts —
        # four orders of magnitude below the 300 mV threshold.
        assert max(s.voltage_v for s in samples) < 1e-3

    def test_validation(self):
        sim = self._simulator()
        with pytest.raises(CircuitError):
            sim.run([], duration_s=0.0)
        with pytest.raises(CircuitError):
            Burst(0.0, -1.0)
