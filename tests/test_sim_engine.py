"""Discrete-event engine tests."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, order.append, "b")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(3.0, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        order = []
        for label in "abc":
            sim.schedule(1.0, order.append, label)
        sim.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        sim.schedule(1.5, lambda: None)
        sim.run()
        assert sim.now == pytest.approx(1.5)

    def test_schedule_at_absolute_time(self):
        sim = Simulator(start_time=10.0)
        fired = []
        sim.schedule_at(12.0, fired.append, True)
        sim.run()
        assert fired and sim.now == pytest.approx(12.0)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_scheduling_into_past_rejected(self):
        sim = Simulator(start_time=5.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(4.0, lambda: None)

    def test_events_can_schedule_more_events(self):
        sim = Simulator()
        seen = []

        def chain(n):
            seen.append(n)
            if n < 5:
                sim.schedule(0.1, chain, n + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert seen == [0, 1, 2, 3, 4, 5]


class TestRunUntil:
    def test_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(5.0, fired.append, 5)
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.pending_events == 1

    def test_event_exactly_at_until_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, 2)
        sim.run(until=2.0)
        assert fired == [2]

    def test_clock_advances_to_until_when_queue_drains(self):
        sim = Simulator()
        sim.schedule(0.5, lambda: None)
        sim.run(until=3.0)
        assert sim.now == pytest.approx(3.0)

    def test_resume_after_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(5.0, fired.append, 5)
        sim.run(until=2.0)
        sim.run()
        assert fired == [1, 5]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancelled_event_not_counted_pending(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        assert sim.pending_events == 0

    def test_cancel_one_of_many(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "keep")
        doomed = sim.schedule(1.0, fired.append, "drop")
        doomed.cancel()
        sim.run()
        assert fired == ["keep"]


class TestBudgets:
    def test_max_events_stops_runaway(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.001, forever)

        sim.schedule(0.0, forever)
        sim.run(max_events=100)
        assert sim.dispatched_events == 100

    def test_run_until_empty_raises_on_budget_exhaustion(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.001, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            sim.run_until_empty(max_events=50)

    def test_not_reentrant(self):
        sim = Simulator()

        def recurse():
            sim.run()

        sim.schedule(0.0, recurse)
        with pytest.raises(SimulationError):
            sim.run()
