"""CLI reporter coverage: every figure's renderer produces sane text."""

import pytest

from repro import cli
from repro.core.config import Scheme


class TestReporterFunctions:
    def test_fig1_reporter(self):
        from repro.experiments.fig01_leakage import run_fig01

        lines = cli._report_fig1(run_fig01(duration_s=0.02))
        assert any("peak voltage" in line for line in lines)

    def test_fig5_reporter(self):
        from repro.experiments.fig05_delay_sweep import run_fig05

        result = run_fig05(thresholds=(5,), delays_us=(100, 400), duration_s=0.3)
        lines = cli._report_fig5(result)
        assert len(lines) == 2
        assert "%" in lines[1]

    def test_fig8_reporter(self):
        from repro.experiments.fig08_fairness import run_fig08

        result = run_fig08(neighbor_rates=(24.0,), duration_s=0.3)
        lines = cli._report_fig8(result)
        assert any("powifi" in line for line in lines)

    def test_fig10_reporter(self):
        from repro.experiments.fig10_rectifier import run_fig10

        lines = cli._report_fig10(run_fig10(input_powers_dbm=(4,)))
        assert any("sensitivity" in line for line in lines)

    def test_fig11_reporter(self):
        from repro.experiments.fig11_temperature import run_fig11

        lines = cli._report_fig11(run_fig11(distances_feet=(10, 20)))
        assert any("battery-free range" in line for line in lines)

    def test_fig12_reporter(self):
        from repro.experiments.fig12_camera import run_fig12

        lines = cli._report_fig12(run_fig12(distances_feet=(10, 17)))
        assert len(lines) == 2

    def test_fig13_reporter(self):
        from repro.experiments.fig13_walls import run_fig13

        lines = cli._report_fig13(run_fig13())
        assert any("sheetrock" in line for line in lines)

    def test_fig14_reporter(self):
        from repro.experiments.fig14_homes import run_fig14

        lines = cli._report_fig14(run_fig14(duration_s=3600.0))
        assert any("range" in line for line in lines)
        assert sum("home" in line for line in lines) == 6

    def test_fig15_reporter(self):
        from repro.experiments.fig14_homes import run_fig14
        from repro.experiments.fig15_home_sensor import run_fig15

        lines = cli._report_fig15(run_fig15(run_fig14(duration_s=3600.0)))
        assert len(lines) == 6

    def test_sec8a_reporter(self):
        from repro.experiments.sec8a_charger import run_sec8a

        lines = cli._report_sec8a(run_sec8a())
        assert any("mA" in line for line in lines)

    def test_sec8c_reporter(self):
        from repro.experiments.sec8c_multi_router import run_sec8c

        lines = cli._report_sec8c(run_sec8c(router_counts=(1,), duration_s=0.2))
        assert any("router" in line for line in lines)

    def test_generic_reporter(self):
        assert cli._report_generic({"x": 1}) == ["{'x': 1}"]


class TestCliEndToEnd:
    def test_fig10_via_main(self, capsys):
        assert cli.main(["fig10"]) == 0
        out = capsys.readouterr().out
        assert "sensitivity" in out

    def test_fig12_via_main(self, capsys):
        assert cli.main(["fig12"]) == 0
        out = capsys.readouterr().out
        assert "range" in out

    def test_sec8c_via_main(self, capsys):
        assert cli.main(["sec8c"]) == 0
        out = capsys.readouterr().out
        assert "aggregate" in out
