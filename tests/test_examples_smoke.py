"""Smoke tests: every example script must run cleanly end to end."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def run_example(name, *args, timeout=240):
    path = os.path.join(EXAMPLES_DIR, name)
    return subprocess.run(
        [sys.executable, path, *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py", "1.0")
        assert result.returncode == 0, result.stderr
        assert "cumulative" in result.stdout
        assert "reads/s" in result.stdout

    def test_packet_injection(self, tmp_path):
        result = run_example("packet_injection.py", str(tmp_path / "cap.pcap"))
        assert result.returncode == 0, result.stderr
        assert "1536 bytes" in result.stdout
        assert "occupancy from pcap" in result.stdout

    def test_battery_free_camera(self):
        result = run_example("battery_free_camera.py")
        assert result.returncode == 0, result.stderr
        assert "sheetrock" in result.stdout

    def test_neighbor_fairness(self):
        result = run_example("neighbor_fairness.py")
        assert result.returncode == 0, result.stderr
        assert "powifi" in result.stdout
        assert "blind_udp" in result.stdout

    def test_home_deployment(self):
        result = run_example("home_deployment.py", "1")
        assert result.returncode == 0, result.stderr
        assert "power delivered in every home: yes" in result.stdout

    def test_charging_hotspot(self):
        result = run_example("charging_hotspot.py")
        assert result.returncode == 0, result.stderr
        assert "charged" in result.stdout
        assert "inter-packet delay" in result.stdout

    def test_pdos_attack(self):
        result = run_example("pdos_attack.py")
        assert result.returncode == 0, result.stderr
        assert "under attack: True" in result.stdout

    def test_deployment_planner(self):
        result = run_example("deployment_planner.py")
        assert result.returncode == 0, result.stderr
        assert "max feasible distance" in result.stdout
        assert "900 MHz" in result.stdout
