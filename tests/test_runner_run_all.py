"""Runner orchestration: parallel == sequential, cache reuse, manifest shape.

The heavyweight full-registry demonstration lives in
``benchmarks/test_runner_speedup.py``; here the same guarantees are pinned
on the sub-second experiments so tier-1 stays fast.
"""

import json
import pickle

import pytest

from repro.errors import ConfigurationError
from repro.experiments.registry import SPECS, resolve_target
from repro.experiments import sweeps
from repro.runner import run_all, write_manifest
from repro.runner.manifest import (
    EXPERIMENT_KEYS,
    MANIFEST_SCHEMA_VERSION,
    PART_KEYS,
    build_manifest,
)

#: Sub-second experiments covering a single-task run (fig9, table1), a
#: decomposed sweep (fig14: six homes), and a seedless driver (fig13).
FAST_IDS = ["fig9", "fig13", "fig14", "table1"]


@pytest.fixture()
def cache_dir(tmp_path):
    return str(tmp_path / "cache")


class TestParallelSequentialEquality:
    def test_parallel_matches_sequential_and_direct(self, cache_dir):
        parallel = run_all(ids=FAST_IDS, jobs=2, use_cache=False)
        sequential = run_all(ids=FAST_IDS, jobs=1, use_cache=False)
        assert [run.id for run in parallel.runs] == [run.id for run in sequential.runs]
        for key in FAST_IDS:
            assert (
                parallel.run_for(key).result_sha256
                == sequential.run_for(key).result_sha256
            ), f"{key}: parallel and sequential results differ"
        # And both match a plain monolithic driver call, byte for byte —
        # including fig14, which the runner decomposes into six home parts.
        for key in ("fig9", "fig14", "table1"):
            spec = SPECS[key]
            driver = resolve_target(spec.target)
            direct = driver(seed=0) if spec.accepts_seed() else driver()
            digest = __import__("hashlib").sha256(
                pickle.dumps(direct, protocol=pickle.HIGHEST_PROTOCOL)
            ).hexdigest()
            assert digest == parallel.run_for(key).result_sha256, key

    def test_shape_checks_pass_on_fast_ids(self):
        result = run_all(ids=FAST_IDS, jobs=2, use_cache=False)
        for run in result.runs:
            assert run.shape_ok is True, f"{run.id}: {run.shape_detail}"
        assert result.ok


class TestSweepMergeFidelity:
    """Reduced-scale sweeps merge byte-identically to monolithic runs."""

    @pytest.mark.parametrize(
        "factory_name, factory_kwargs, driver_target, driver_kwargs",
        [
            (
                "fig5_sweep",
                dict(thresholds=(1, 5), delays_us=(10.0, 50.0), duration_s=0.2),
                "repro.experiments.fig05_delay_sweep:run_fig05",
                dict(thresholds=(1, 5), delays_us=(10.0, 50.0), duration_s=0.2),
            ),
            (
                "fig8_sweep",
                dict(neighbor_rates=(11.0, 24.0), duration_s=0.3),
                "repro.experiments.fig08_fairness:run_fig08",
                dict(neighbor_rates=(11.0, 24.0), duration_s=0.3),
            ),
            (
                "sec8c_sweep",
                dict(router_counts=(1, 2), duration_s=0.2),
                "repro.experiments.sec8c_multi_router:run_sec8c",
                dict(router_counts=(1, 2), duration_s=0.2),
            ),
        ],
        ids=["fig5", "fig8", "sec8c"],
    )
    def test_merge_equals_monolithic(
        self, factory_name, factory_kwargs, driver_target, driver_kwargs
    ):
        factory = getattr(sweeps, factory_name)
        plan = factory(seed=0, **factory_kwargs)
        assert len(plan.parts) >= 2
        merged = plan.merge(
            [resolve_target(part.target)(**part.kwargs) for part in plan.parts]
        )
        mono = resolve_target(driver_target)(seed=0, **driver_kwargs)
        assert pickle.dumps(merged) == pickle.dumps(mono)

    def test_fig14_parts_cover_all_homes(self):
        plan = sweeps.fig14_sweep(seed=0)
        assert [part.name for part in plan.parts] == [
            f"home={index}" for index in (1, 2, 3, 4, 5, 6)
        ]


class TestCacheBehaviour:
    def test_warm_run_serves_everything_from_cache(self, cache_dir):
        cold = run_all(ids=FAST_IDS, jobs=2, cache_dir=cache_dir)
        assert cold.cache_hits == 0
        warm = run_all(ids=FAST_IDS, jobs=2, cache_dir=cache_dir)
        assert warm.cache_hits == len(FAST_IDS)
        for key in FAST_IDS:
            assert (
                warm.run_for(key).result_sha256 == cold.run_for(key).result_sha256
            ), f"{key}: cached replay differs from cold run"

    def test_changed_seed_misses(self, cache_dir):
        run_all(ids=["fig14"], jobs=1, cache_dir=cache_dir, seed=0)
        rerun = run_all(ids=["fig14"], jobs=1, cache_dir=cache_dir, seed=1)
        assert rerun.cache_hits == 0

    def test_seedless_experiments_hit_across_seeds(self, cache_dir):
        """fig13 takes no seed, so a seed override must not invalidate it."""
        run_all(ids=["fig13"], jobs=1, cache_dir=cache_dir, seed=0)
        rerun = run_all(ids=["fig13"], jobs=1, cache_dir=cache_dir, seed=99)
        assert rerun.cache_hits == 1

    def test_no_cache_mode_writes_nothing(self, tmp_path):
        cache = str(tmp_path / "never")
        run_all(ids=["table1"], jobs=1, use_cache=False, cache_dir=cache)
        assert not (tmp_path / "never").exists()

    def test_unknown_id_raises_configuration_error(self):
        with pytest.raises(ConfigurationError, match="unknown experiment"):
            run_all(ids=["fig99"], jobs=1, use_cache=False)

    def test_padded_ids_normalise(self, cache_dir):
        result = run_all(ids=["fig09", "table1"], jobs=1, cache_dir=cache_dir)
        assert [run.id for run in result.runs] == ["fig9", "table1"]


class TestManifest:
    def test_schema_stability(self, cache_dir, tmp_path):
        result = run_all(ids=FAST_IDS, jobs=2, cache_dir=cache_dir)
        path = tmp_path / "run_manifest.json"
        manifest = write_manifest(result, str(path))
        on_disk = json.loads(path.read_text())
        assert on_disk["schema"] == MANIFEST_SCHEMA_VERSION
        for top_key in (
            "schema",
            "generated_unix_s",
            "jobs",
            "seed",
            "code_fingerprint",
            "interrupted",
            "retries",
            "task_timeout_s",
            "cache",
            "faults",
            "totals",
            "spans",
            "experiments",
        ):
            assert top_key in on_disk, top_key
        assert on_disk["interrupted"] is False
        assert on_disk["faults"] == {"plan": None, "events": []}
        assert on_disk["cache"]["quarantined"] == []
        assert on_disk["totals"]["experiments"] == len(FAST_IDS)
        assert on_disk["totals"]["ok"] == len(FAST_IDS)
        assert set(on_disk["spans"]) == {"schema", "count", "records"}
        assert on_disk["spans"]["count"] == len(on_disk["spans"]["records"])
        for entry in on_disk["experiments"]:
            assert set(entry) == set(EXPERIMENT_KEYS)
            for part in entry["parts"]:
                assert set(part) == set(PART_KEYS)
                assert len(part["key"]) == 64
                assert set(part["engine"]) >= {"dispatched", "heap_high_watermark"}
                assert set(part["metrics"]) == {"records", "counter_totals"}
        fig14 = next(e for e in on_disk["experiments"] if e["id"] == "fig14")
        assert len(fig14["parts"]) == 6
        fig13 = next(e for e in on_disk["experiments"] if e["id"] == "fig13")
        assert fig13["seed"] is None  # seedless driver: no seed recorded

    def test_manifest_records_cache_hits(self, cache_dir):
        run_all(ids=["fig9"], jobs=1, cache_dir=cache_dir)
        warm = run_all(ids=["fig9"], jobs=1, cache_dir=cache_dir)
        manifest = build_manifest(warm)
        assert manifest["experiments"][0]["cache_hit"] is True
        assert manifest["cache"]["experiments_hit"] == 1

    def test_failed_experiment_recorded_not_raised(self, monkeypatch, cache_dir):
        """A crashing driver lands in the manifest as an error, not a crash."""
        from repro.experiments import registry as registry_module

        broken = registry_module.ExperimentSpec(
            id="fig9",
            target="repro.experiments.registry:no_such_function",
            runtime="fast",
        )
        monkeypatch.setitem(registry_module.SPECS, "fig9", broken)
        result = run_all(ids=["fig9"], jobs=1, cache_dir=cache_dir)
        run = result.run_for("fig9")
        assert run.error is not None and not run.ok
        manifest = build_manifest(result)
        assert manifest["experiments"][0]["error"]
        assert manifest["totals"]["failed"] == 1


class TestRunnerMetrics:
    def test_cache_counters_flow_through_obs(self, cache_dir):
        from repro.obs import runtime as obs_runtime

        obs_runtime.configure(enabled=True)
        registry = obs_runtime.get_registry()
        run_all(ids=["fig9", "table1"], jobs=1, cache_dir=cache_dir)
        assert registry.value("runner.cache.misses") == 2
        run_all(ids=["fig9", "table1"], jobs=1, cache_dir=cache_dir)
        assert registry.value("runner.cache.hits") == 2
        assert registry.value("runner.run.experiments") == 2
        obs_runtime.configure(enabled=True)  # leave a clean registry behind


class TestRunAllCli:
    def test_cli_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        manifest_path = tmp_path / "manifest.json"
        code = main(
            [
                "run-all",
                "--ids",
                "table1,fig9",
                "--jobs",
                "2",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--report",
                str(manifest_path),
                "--history-dir",
                str(tmp_path / "hist"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "== run-all == 2/2 ok" in out
        assert manifest_path.is_file()
        assert (tmp_path / "run_spans.jsonl").is_file()
        assert (tmp_path / "run_metrics.jsonl").is_file()
        assert (tmp_path / "hist" / "perf_history.jsonl").is_file()
        # Second invocation: everything from cache.
        code = main(
            [
                "run-all",
                "--ids",
                "table1,fig9",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--report",
                str(manifest_path),
                "--history-dir",
                str(tmp_path / "hist"),
            ]
        )
        assert code == 0
        assert "2 from cache" in capsys.readouterr().out
        history_lines = (
            (tmp_path / "hist" / "perf_history.jsonl").read_text().strip().splitlines()
        )
        assert len(history_lines) == 2  # one appended record per invocation

    def test_cli_unknown_id(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            ["run-all", "--ids", "fig99", "--cache-dir", str(tmp_path / "cache")]
        )
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_cli_clear_cache(self, tmp_path, capsys):
        from repro.cli import main

        cache = str(tmp_path / "cache")
        report = str(tmp_path / "m.json")
        main(
            [
                "run-all",
                "--ids",
                "table1",
                "--cache-dir",
                cache,
                "--report",
                report,
                "--no-history",
            ]
        )
        code = main(
            [
                "run-all",
                "--ids",
                "table1",
                "--clear-cache",
                "--cache-dir",
                cache,
                "--report",
                report,
                "--no-history",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cleared 1 cache entries" in out
        assert "0 from cache" in out
