"""Occupancy metric tests: the paper's Σ size/rate measurement."""

import pytest

from repro.core.occupancy import (
    OccupancyAnalyzer,
    OccupancySeries,
    cumulative_series,
    occupancy_from_pcap,
)
from repro.errors import ConfigurationError
from repro.mac80211.capture import MonitorCapture
from repro.mac80211.frames import FrameJob, FrameKind
from repro.mac80211.medium import Medium
from repro.mac80211.station import Station
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def channel_with_station(seed=0):
    sim = Simulator()
    streams = RandomStreams(seed)
    medium = Medium(sim, channel=1)
    station = Station(sim, name="router", streams=streams)
    medium.attach(station)
    return sim, streams, medium, station


def power_frame(size=1536, rate=54.0):
    return FrameJob(mac_bytes=size, rate_mbps=rate, kind=FrameKind.POWER, broadcast=True)


class TestOccupancySeries:
    def test_mean(self):
        series = OccupancySeries(window_s=1.0, samples=[0.2, 0.4, 0.6])
        assert series.mean == pytest.approx(0.4)

    def test_mean_of_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            OccupancySeries(window_s=1.0).mean

    def test_cdf_is_monotone(self):
        series = OccupancySeries(window_s=1.0, samples=[0.5, 0.1, 0.9, 0.3])
        cdf = series.cdf()
        values = [v for v, _ in cdf]
        fractions = [f for _, f in cdf]
        assert values == sorted(values)
        assert fractions[-1] == pytest.approx(1.0)

    def test_percentile(self):
        series = OccupancySeries(window_s=1.0, samples=[0.0, 1.0])
        assert series.percentile(50) == pytest.approx(0.5)
        assert series.percentile(0) == 0.0
        assert series.percentile(100) == 1.0

    def test_percentile_validation(self):
        series = OccupancySeries(window_s=1.0, samples=[0.5])
        with pytest.raises(ConfigurationError):
            series.percentile(101)


class TestCumulativeSeries:
    def test_sums_aligned_windows(self):
        a = OccupancySeries(window_s=1.0, samples=[0.3, 0.4])
        b = OccupancySeries(window_s=1.0, samples=[0.5, 0.5])
        total = cumulative_series([a, b])
        assert total.samples == [pytest.approx(0.8), pytest.approx(0.9)]

    def test_truncates_to_shortest(self):
        a = OccupancySeries(window_s=1.0, samples=[0.3, 0.4, 0.5])
        b = OccupancySeries(window_s=1.0, samples=[0.5])
        assert len(cumulative_series([a, b]).samples) == 1

    def test_mismatched_windows_rejected(self):
        a = OccupancySeries(window_s=1.0, samples=[0.3])
        b = OccupancySeries(window_s=2.0, samples=[0.5])
        with pytest.raises(ConfigurationError):
            cumulative_series([a, b])

    def test_empty_list_rejected(self):
        with pytest.raises(ConfigurationError):
            cumulative_series([])

    def test_can_exceed_one(self):
        """The paper's cumulative occupancy legitimately exceeds 100 %."""
        chans = [OccupancySeries(window_s=1.0, samples=[0.6]) for _ in range(3)]
        assert cumulative_series(chans).samples[0] == pytest.approx(1.8)


class TestAnalyzer:
    def test_counts_payload_airtime(self):
        sim, streams, medium, station = channel_with_station()
        analyzer = OccupancyAnalyzer(medium)
        station.enqueue(power_frame())
        sim.run(until=0.001)
        # One 1536-byte frame at 54 Mb/s in 1 ms: 227.6us/1000us = 0.2276.
        assert analyzer.occupancy(0.0, 0.001) == pytest.approx(0.2276, abs=0.002)

    def test_station_filter_excludes_others(self):
        sim, streams, medium, station = channel_with_station()
        other = Station(sim, name="other", streams=streams)
        medium.attach(other)
        mine = OccupancyAnalyzer(medium, station_filter="router")
        station.enqueue(power_frame())
        other.enqueue(power_frame())
        sim.run(until=0.01)
        everyone = 2 * 227.6e-6 / 0.01
        assert mine.occupancy(0.0, 0.01) == pytest.approx(everyone / 2, rel=0.01)

    def test_frame_count(self):
        sim, streams, medium, station = channel_with_station()
        analyzer = OccupancyAnalyzer(medium)
        for _ in range(7):
            station.enqueue(power_frame())
        sim.run()
        assert analyzer.frame_count == 7

    def test_series_window_count(self):
        sim, streams, medium, station = channel_with_station()
        analyzer = OccupancyAnalyzer(medium)
        for _ in range(10):
            station.enqueue(power_frame())
        sim.run(until=1.0)
        series = analyzer.series(window_s=0.25)
        assert len(series.samples) == 4

    def test_zero_window_rejected(self):
        sim, streams, medium, station = channel_with_station()
        analyzer = OccupancyAnalyzer(medium)
        sim.run(until=0.1)
        with pytest.raises(ConfigurationError):
            analyzer.series(window_s=0.0)

    def test_occupancy_window_validation(self):
        sim, streams, medium, station = channel_with_station()
        analyzer = OccupancyAnalyzer(medium)
        with pytest.raises(ConfigurationError):
            analyzer.occupancy(1.0, 1.0)


class TestPcapPath:
    def test_pcap_and_live_agree(self):
        """The two implementations of the metric must match each other."""
        sim, streams, medium, station = channel_with_station()
        analyzer = OccupancyAnalyzer(medium, station_filter="router")
        capture = MonitorCapture(medium, station_filter="router")
        for _ in range(15):
            station.enqueue(power_frame())
        sim.run(until=0.01)
        capture.close()
        live = analyzer.occupancy(0.0, 0.01)
        offline = occupancy_from_pcap(capture.getvalue(), duration_s=0.01)
        assert offline == pytest.approx(live, rel=0.01)

    def test_mixed_rates_weighted_correctly(self):
        sim, streams, medium, station = channel_with_station()
        capture = MonitorCapture(medium)
        station.enqueue(power_frame(rate=54.0))
        station.enqueue(power_frame(rate=6.0))
        sim.run(until=0.01)
        capture.close()
        occupancy = occupancy_from_pcap(capture.getvalue(), duration_s=0.01)
        expected = (1536 * 8 / 54e6 + 1536 * 8 / 6e6) / 0.01
        assert occupancy == pytest.approx(expected, rel=0.01)

    def test_duration_inference_needs_two_frames(self):
        sim, streams, medium, station = channel_with_station()
        capture = MonitorCapture(medium)
        station.enqueue(power_frame())
        sim.run()
        capture.close()
        with pytest.raises(ConfigurationError):
            occupancy_from_pcap(capture.getvalue())
