"""Run the library's inline doctest examples.

Every public-facing docstring example in the core modules must stay
executable — they are the first code a new user copies.
"""

import doctest

import pytest

import repro.analysis
import repro.harvester.diode
import repro.harvester.rectifier
import repro.mac80211.airtime
import repro.mac80211.channels
import repro.mac80211.ht
import repro.mac80211.rates
import repro.obs.metrics
import repro.packets.bytesutil
import repro.rf.propagation
import repro.runner.cache
import repro.sim.engine
import repro.sim.rng
import repro.units
import repro.workloads.homes

MODULES = [
    repro.analysis,
    repro.harvester.diode,
    repro.harvester.rectifier,
    repro.mac80211.airtime,
    repro.mac80211.channels,
    repro.mac80211.ht,
    repro.mac80211.rates,
    repro.obs.metrics,
    repro.packets.bytesutil,
    repro.rf.propagation,
    repro.runner.cache,
    repro.sim.engine,
    repro.sim.rng,
    repro.units,
    repro.workloads.homes,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"


def test_doctests_actually_present():
    """Guard: the suite must be exercising a real number of examples."""
    attempted = sum(
        doctest.testmod(module, verbose=False).attempted for module in MODULES
    )
    assert attempted >= 20
